use crate::{AdcModel, ExecPrecision, WeightScheme, XbarConfig, XbarError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_device::variation::StuckPolarity;
use red_device::DriftModel;

/// Reusable working memory for the analog VMM pipeline.
///
/// [`CrossbarArray::vmm_analog_into`] and
/// [`CrossbarArray::vmm_analog_batch`] need a handful of working buffers
/// (the shift-add accumulators, the per-phase column-current accumulator,
/// and the phase-decomposition index lists). A scratch owns them so
/// steady-state execution — thousands of VMMs through the same array —
/// performs no per-call heap allocation: the buffers are grown on first
/// use and reused afterwards. One scratch serves arrays of any geometry
/// and batches of any size (buffers are resized per call), so an engine
/// can share a single scratch across all its sub-crossbars.
#[derive(Debug, Clone, Default)]
pub struct VmmScratch {
    /// Per-weight shift-add accumulator (single-input path).
    acc: Vec<i128>,
    /// Per-physical-column current accumulator for one conversion phase.
    currents: Vec<f64>,
    /// Bucket offsets of the phase decomposition: bucket `p` (or
    /// `k·phases + p` in a batch) owns `phase_rows[off[p]..off[p+1]]`.
    phase_off: Vec<u32>,
    /// Active-row indices, grouped per phase bucket, ascending within
    /// each bucket (the f64 summation order contract).
    phase_rows: Vec<u32>,
    /// Counting-sort fill cursors, reused as per-input row-block cursors
    /// by the phase-major batch kernel.
    cursors: Vec<u32>,
    /// Per-input per-weight shift-add accumulators (batch path).
    batch_acc: Vec<i128>,
    /// Per-input per-column current accumulators for one phase (batch
    /// path).
    batch_currents: Vec<f64>,
    /// Truncated-input staging for the exact path at reduced precision
    /// (the analog path truncates implicitly by skipping phase buckets).
    trunc: Vec<i64>,
}

impl VmmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One shift-add slice of one logical weight column, resolved at
/// programming time: which physical column(s) hold the slice and how far
/// its counts shift into the recombined weight value. For the
/// differential scheme `pos`/`neg` are the column pair; for offset binary
/// both name the same single column.
#[derive(Debug, Clone, Copy)]
struct RecombSlice {
    pos: u32,
    neg: u32,
    shift: u32,
}

/// One programmed ReRAM crossbar array.
///
/// Rows correspond to input channels (wordlines), logical columns to
/// filters; each logical column expands into several physical columns of
/// multi-level cells according to the configured [`WeightScheme`].
///
/// Two evaluation paths are provided:
///
/// * [`CrossbarArray::vmm_exact`] — the digital integer reference
///   (`out = Wᵀ x`);
/// * [`CrossbarArray::vmm_analog`] — the full Fig. 1(a) pipeline:
///   bit-serial input phases, per-phase analog column-current summation
///   with dummy-column baseline cancellation, integrate-and-fire
///   conversion, and shift-add recombination.
///
/// With an ideal configuration the two are bit-exact (property-tested);
/// [`CrossbarArray::vmm`] dispatches to the fast exact path when the
/// configuration is ideal and to the analog path otherwise.
///
/// Everything the analog path needs that is fixed once the cells are
/// written — conductance, geometry, wire droop, retention drift,
/// variation, stuck-at faults — is frozen at [`CrossbarArray::program`]
/// time into the **effective-current plane** (`i_eff[r][col]`, the read
/// current each cell contributes to its bitline) and the per-weight
/// shift-add column map, so a conversion phase is nothing but streaming
/// additions over contiguous row slices of the plane.
#[derive(Debug)]
pub struct CrossbarArray {
    cfg: XbarConfig,
    rows: usize,
    weight_cols: usize,
    phys_cols: usize,
    /// Reference copy of the programmed weights (digital golden model).
    weights: Vec<i64>,
    /// Per-cell conductance in siemens, row-major `rows x phys_cols`,
    /// including programming variation and stuck-at faults.
    conductance: Vec<f64>,
    /// Effective read current per cell in amperes, row-major
    /// `rows x phys_cols`: `i_eff = IrDropModel::cell_current_a(v_read,
    /// g, r, col)` — conductance with wire droop already folded in, so a
    /// conversion phase only sums plane entries. Populated at programming
    /// time for non-ideal configurations (the only ones whose `vmm`
    /// dispatch reaches the analog path); ideal arrays — which only hit
    /// the analog pipeline through explicit `vmm_analog*` calls, e.g. the
    /// equivalence tests — build it lazily on first use, so the exact
    /// serving path never pays the doubled memory.
    eff_current: std::sync::OnceLock<Vec<f64>>,
    /// Shift-add recombination map, `weight_cols x slices` row-major:
    /// which physical columns recombine into which weight at which shift.
    recomb: Vec<RecombSlice>,
    g_min: f64,
    g_step: f64,
    /// Cells pinned to a rail by post-programming stuck-at strikes
    /// ([`CrossbarArray::apply_faults`]); counted so `is_ideal` knows the
    /// array left the exact path even under an otherwise ideal config.
    struck: u64,
}

impl Clone for CrossbarArray {
    fn clone(&self) -> Self {
        // OnceLock is not Clone; carry over an already-built plane so a
        // cloned noisy array stays ready-to-run.
        let eff_current = std::sync::OnceLock::new();
        if let Some(plane) = self.eff_current.get() {
            let _ = eff_current.set(plane.clone());
        }
        Self {
            cfg: self.cfg,
            rows: self.rows,
            weight_cols: self.weight_cols,
            phys_cols: self.phys_cols,
            weights: self.weights.clone(),
            conductance: self.conductance.clone(),
            eff_current,
            recomb: self.recomb.clone(),
            g_min: self.g_min,
            g_step: self.g_step,
            struck: self.struck,
        }
    }
}

impl CrossbarArray {
    /// Programs an array from a `rows x cols` signed weight matrix.
    ///
    /// Device-to-device variation and stuck-at faults from the
    /// configuration are applied once here, at programming time, exactly
    /// as write-and-verify hardware would freeze them. For non-ideal
    /// configurations the same pass precomputes the effective-current
    /// plane the analog read path sums over (one extra `f64` per cell —
    /// the price of never re-deriving wire droop per conversion phase);
    /// ideal arrays skip it, since their `vmm` dispatch never reaches the
    /// analog path.
    ///
    /// # Errors
    ///
    /// * [`XbarError::BadWeightMatrix`] for an empty or ragged matrix;
    /// * [`XbarError::WeightOutOfRange`] when a weight exceeds
    ///   `±(2^(weight_bits-1) - 1)`.
    pub fn program(cfg: &XbarConfig, weights: &[Vec<i64>]) -> Result<Self, XbarError> {
        let rows = weights.len();
        if rows == 0 {
            return Err(XbarError::BadWeightMatrix("no rows".into()));
        }
        let weight_cols = weights[0].len();
        if weight_cols == 0 {
            return Err(XbarError::BadWeightMatrix("no columns".into()));
        }
        if let Some(bad) = weights.iter().find(|r| r.len() != weight_cols) {
            return Err(XbarError::BadWeightMatrix(format!(
                "ragged row of length {} (expected {weight_cols})",
                bad.len()
            )));
        }
        let bound = cfg.weight_bound();
        let mut flat = Vec::with_capacity(rows * weight_cols);
        for row in weights {
            for &w in row {
                if w.abs() > bound {
                    return Err(XbarError::WeightOutOfRange { value: w, bound });
                }
                flat.push(w);
            }
        }
        Self::program_flat(cfg, rows, weight_cols, flat)
    }

    /// Programs an array from a flat row-major weight buffer.
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::program`]; additionally rejects a buffer
    /// whose length is not `rows * cols`.
    pub fn program_flat(
        cfg: &XbarConfig,
        rows: usize,
        weight_cols: usize,
        weights: Vec<i64>,
    ) -> Result<Self, XbarError> {
        if rows == 0 || weight_cols == 0 {
            return Err(XbarError::BadWeightMatrix("zero dimension".into()));
        }
        if weights.len() != rows * weight_cols {
            return Err(XbarError::BadWeightMatrix(format!(
                "buffer length {} != {rows} x {weight_cols}",
                weights.len()
            )));
        }
        let bound = cfg.weight_bound();
        if let Some(&w) = weights.iter().find(|w| w.abs() > bound) {
            return Err(XbarError::WeightOutOfRange { value: w, bound });
        }

        let slices = cfg.slices();
        let per_weight = cfg.phys_cols_per_weight();
        let phys_cols = weight_cols * per_weight;
        let levels = cfg.cell.levels();
        let g_min = 1.0 / cfg.cell.r_off_ohm;
        let g_max = 1.0 / cfg.cell.r_on_ohm;
        let g_step = (g_max - g_min) / f64::from(levels - 1);
        let bpc = cfg.cell.bits_per_cell;
        let level_mask = u64::from(levels - 1);

        let mut variation = cfg.variation.sampler();
        let mut faults = cfg.faults.sampler();
        // Retention drift scales every programmed filament uniformly (the
        // read circuit's reference levels stay fresh, which is exactly why
        // drifted arrays misread).
        let drift = cfg.drift.factor();
        let mut conductance = vec![0.0f64; rows * phys_cols];

        for r in 0..rows {
            for m in 0..weight_cols {
                let w = weights[r * weight_cols + m];
                for s in 0..slices {
                    let shift = (s as u32) * bpc;
                    match cfg.scheme {
                        WeightScheme::Differential => {
                            let mag = w.unsigned_abs();
                            let code = ((mag >> shift) & level_mask) as u16;
                            let (pos_code, neg_code) = if w >= 0 { (code, 0) } else { (0, code) };
                            let base = r * phys_cols + m * per_weight + 2 * s;
                            conductance[base] = drift
                                * Self::cell_conductance(
                                    pos_code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                            conductance[base + 1] = drift
                                * Self::cell_conductance(
                                    neg_code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                        }
                        WeightScheme::OffsetBinary => {
                            let offset = (w + (1i64 << (cfg.weight_bits - 1))) as u64;
                            let code = ((offset >> shift) & level_mask) as u16;
                            let base = r * phys_cols + m * per_weight + s;
                            conductance[base] = drift
                                * Self::cell_conductance(
                                    code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                        }
                    }
                }
            }
        }

        // The shift-add recombination map: which physical columns feed
        // which weight at which shift is pure geometry, frozen here so
        // the per-phase recombination is a linear walk.
        let mut recomb = Vec::with_capacity(weight_cols * slices);
        for m in 0..weight_cols {
            for s in 0..slices {
                let shift = (s as u32) * bpc;
                match cfg.scheme {
                    WeightScheme::Differential => recomb.push(RecombSlice {
                        pos: (m * per_weight + 2 * s) as u32,
                        neg: (m * per_weight + 2 * s + 1) as u32,
                        shift,
                    }),
                    WeightScheme::OffsetBinary => {
                        let col = (m * per_weight + s) as u32;
                        recomb.push(RecombSlice {
                            pos: col,
                            neg: col,
                            shift,
                        });
                    }
                }
            }
        }

        let arr = Self {
            cfg: *cfg,
            rows,
            weight_cols,
            phys_cols,
            weights,
            conductance,
            eff_current: std::sync::OnceLock::new(),
            recomb,
            g_min,
            g_step,
            struck: 0,
        };
        // Non-ideal configurations freeze the effective-current plane at
        // programming time, exactly like write-and-verify hardware; ideal
        // arrays never reach the analog path through `vmm`, so they defer
        // the build to a first explicit `vmm_analog*` call.
        if !arr.is_ideal() {
            let _ = arr.eff_current.set(arr.build_plane());
        }
        Ok(arr)
    }

    /// Builds the effective-current plane: wire droop depends only on the
    /// cell's position and conductance, both frozen at programming, so it
    /// is folded in once instead of once per cell per conversion phase.
    fn build_plane(&self) -> Vec<f64> {
        let ir = &self.cfg.ir_drop;
        let v_read = self.cfg.cell.read_voltage;
        self.conductance
            .iter()
            .enumerate()
            .map(|(idx, &g)| {
                ir.cell_current_a(
                    v_read,
                    g,
                    idx / self.phys_cols,
                    idx % self.phys_cols,
                    self.rows,
                )
            })
            .collect()
    }

    /// The effective-current plane, built on first use for ideal arrays.
    fn plane(&self) -> &[f64] {
        self.eff_current.get_or_init(|| self.build_plane())
    }

    fn cell_conductance(
        code: u16,
        g_min: f64,
        g_max: f64,
        g_step: f64,
        variation: &mut red_device::variation::VariationSampler,
        faults: &mut red_device::variation::FaultSampler,
    ) -> f64 {
        let ideal = g_min + g_step * f64::from(code);
        match faults.next_fault() {
            Some(StuckPolarity::StuckOff) => g_min,
            Some(StuckPolarity::StuckOn) => g_max,
            None => ideal * variation.next_factor(),
        }
    }

    /// Input channel (row) count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical weight column (filter) count.
    pub fn weight_cols(&self) -> usize {
        self.weight_cols
    }

    /// Physical column count after bit-slicing and sign encoding.
    pub fn phys_cols(&self) -> usize {
        self.phys_cols
    }

    /// The configuration this array was programmed with.
    pub fn config(&self) -> &XbarConfig {
        &self.cfg
    }

    /// The programmed weight at `(row, col)` (digital reference copy).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn weight(&self, row: usize, col: usize) -> i64 {
        assert!(
            row < self.rows && col < self.weight_cols,
            "index out of bounds"
        );
        self.weights[row * self.weight_cols + col]
    }

    /// `true` when the configured model has no non-idealities, i.e.
    /// [`CrossbarArray::vmm`] dispatches to the exact digital path.
    pub fn is_ideal(&self) -> bool {
        self.cfg.adc == AdcModel::Ideal
            && self.cfg.variation.is_ideal()
            && self.cfg.faults.is_none()
            && self.cfg.ir_drop.is_ideal()
            && self.cfg.drift.is_fresh()
            && self.struck == 0
    }

    /// Cells pinned to a rail by [`CrossbarArray::apply_faults`] since
    /// programming (0 for a freshly programmed array).
    pub fn struck_cells(&self) -> u64 {
        self.struck
    }

    /// Strikes `strikes` seeded-random cells with stuck-at faults — the
    /// in-field aging path, as opposed to the programming-time fault map
    /// frozen by [`CrossbarArray::program`]. Each strike pins one cell to
    /// a conductance rail (SA0 → `g_min`, SA1 → `g_max`, polarity drawn
    /// from the same stream as the position), then the effective-current
    /// plane is rebuilt so the analog path sees the damage immediately.
    ///
    /// The strike map is a pure function of `(geometry, strikes, seed)`:
    /// two identically programmed arrays struck with the same arguments
    /// end up with identical planes, and repeated incremental calls
    /// compose deterministically (each call draws from its own seeded
    /// stream). Strikes may land on already-struck cells; `struck` counts
    /// strike events, not distinct cells.
    pub fn apply_faults(&mut self, strikes: usize, seed: u64) -> u64 {
        if strikes == 0 {
            return self.struck;
        }
        let levels = self.cfg.cell.levels();
        let g_max = self.g_min + self.g_step * f64::from(levels - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..strikes {
            let idx = rng.gen_range(0..self.conductance.len());
            let on: f64 = rng.gen_range(0.0..1.0);
            self.conductance[idx] = if on < 0.5 { self.g_min } else { g_max };
        }
        self.struck += strikes as u64;
        self.rebuild_plane();
        self.struck
    }

    /// Advances retention drift to `model`, rescaling every programmed
    /// conductance by the ratio of the new drift factor to the one frozen
    /// at programming time (drift is multiplicative, so the update is
    /// exact — re-programming with `model` in the config yields the same
    /// plane up to the variation/fault streams, which are untouched).
    /// Rebuilds the effective-current plane.
    pub fn advance_drift(&mut self, model: DriftModel) {
        let ratio = model.factor() / self.cfg.drift.factor();
        if ratio != 1.0 {
            for g in &mut self.conductance {
                *g *= ratio;
            }
        }
        self.cfg.drift = model;
        self.rebuild_plane();
    }

    /// Recomputes the effective-current plane from the current
    /// conductances — the modeled analogue of a read-calibration pass
    /// after [`CrossbarArray::apply_faults`] or
    /// [`CrossbarArray::advance_drift`] mutate the cells.
    pub fn rebuild_plane(&mut self) {
        let plane = self.build_plane();
        self.eff_current = std::sync::OnceLock::new();
        let _ = self.eff_current.set(plane);
    }

    /// `true` when [`CrossbarArray::vmm_batch`] will actually cache-block
    /// the exact path: the configuration is ideal and the weight matrix
    /// is too large (≥ 1 MiB) to stay resident between back-to-back
    /// per-input passes. Below the threshold a per-input loop with shared
    /// scratch is faster (measured on the committed baseline host).
    pub fn batching_pays(&self) -> bool {
        const BLOCK_BYTES_MIN: usize = 1 << 20;
        self.is_ideal() && std::mem::size_of_val(self.weights.as_slice()) >= BLOCK_BYTES_MIN
    }

    /// `true` when [`CrossbarArray::vmm_analog_batch`] will take its
    /// phase-major row-blocked kernel: the configuration is non-ideal
    /// (there is an analog path to batch) and the effective-current plane
    /// is too large (≥ 4 MiB) to stay cache-resident across back-to-back
    /// per-input passes — the analog analogue of
    /// [`CrossbarArray::batching_pays`], with the plane (one `f64` per
    /// physical cell) in the role of the weight matrix. The threshold is
    /// measured (see the `analog` criterion bench): a 2 MiB plane is
    /// still last-level-cache resident on the baseline host and blocking
    /// is a wash, while from ~4 MiB up the phase-major kernel wins
    /// ~1.3x by paying plane traffic once per block per phase instead of
    /// once per input.
    pub fn analog_batching_pays(&self) -> bool {
        const BLOCK_BYTES_MIN: usize = 1 << 22;
        !self.is_ideal()
            && self.rows * self.phys_cols * std::mem::size_of::<f64>() >= BLOCK_BYTES_MIN
    }

    /// `true` when gathering a whole batch for [`CrossbarArray::vmm_batch`]
    /// is worth it on *either* path — cache-blocked exact
    /// ([`CrossbarArray::batching_pays`]) or phase-major analog
    /// ([`CrossbarArray::analog_batching_pays`]). Engines consult this to
    /// decide whether to gather pixel-major across the batch, which
    /// trades input locality for weight/plane reuse.
    pub fn vmm_batch_pays(&self) -> bool {
        self.batching_pays() || self.analog_batching_pays()
    }

    /// Exact digital vector-matrix multiply: `out[m] = Σ_r input[r] * W[r,m]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` (use [`CrossbarArray::vmm_checked`]
    /// for a fallible variant).
    pub fn vmm_exact(&self, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.weight_cols];
        self.vmm_exact_into(input, &mut out);
        out
    }

    /// Allocation-free [`CrossbarArray::vmm_exact`]: writes the result into
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    pub fn vmm_exact_into(&self, input: &[i64], out: &mut [i64]) {
        assert_eq!(input.len(), self.rows, "input length must match rows");
        assert_eq!(out.len(), self.weight_cols, "output length must match");
        out.fill(0);
        for (r, &x) in input.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let row = &self.weights[r * self.weight_cols..(r + 1) * self.weight_cols];
            for (o, &w) in out.iter_mut().zip(row) {
                *o += x * w;
            }
        }
    }

    /// Cache-blocked multi-input exact VMM: `n` input vectors, flattened
    /// row-major into `inputs` (`n × rows`), produce `n × weight_cols`
    /// results in `out`.
    ///
    /// When the weight matrix is too large to sit in cache across
    /// back-to-back calls, it is walked in row blocks that stay resident
    /// while every input of the batch consumes them, so weight traffic is
    /// paid once per block instead of once per input; small matrices are
    /// already cache-resident, so they take the straight per-input loop
    /// (blocking would only add loop overhead). Integer accumulation is
    /// order-independent, so the result is bit-identical to `n` calls of
    /// [`CrossbarArray::vmm_exact_into`] either way.
    ///
    /// Non-ideal configurations have no exact path to block; those route
    /// through [`CrossbarArray::vmm_analog_batch`] — phase-major over the
    /// effective-current plane when that pays, a per-input analog loop
    /// otherwise — keeping the semantics of [`CrossbarArray::vmm`].
    /// `scratch` is only touched on the analog path and is the caller's,
    /// so steady-state batched execution stays allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * weight_cols`.
    pub fn vmm_batch(&self, inputs: &[i64], n: usize, scratch: &mut VmmScratch, out: &mut [i64]) {
        assert_eq!(inputs.len(), n * self.rows, "inputs must be n x rows");
        assert_eq!(
            out.len(),
            n * self.weight_cols,
            "out must be n x weight_cols"
        );
        if !self.is_ideal() {
            self.vmm_analog_batch(inputs, n, scratch, out);
            return;
        }
        if !self.batching_pays() {
            for (input, o) in inputs
                .chunks_exact(self.rows)
                .zip(out.chunks_exact_mut(self.weight_cols))
            {
                self.vmm_exact_into(input, o);
            }
            return;
        }
        out.fill(0);
        // Row blocking: ~ROW_BLOCK * weight_cols weights stay hot while the
        // whole batch streams over them.
        const ROW_BLOCK: usize = 64;
        let m = self.weight_cols;
        for r0 in (0..self.rows).step_by(ROW_BLOCK) {
            let r1 = (r0 + ROW_BLOCK).min(self.rows);
            let wblock = &self.weights[r0 * m..r1 * m];
            for (input, o) in inputs.chunks_exact(self.rows).zip(out.chunks_exact_mut(m)) {
                for (dr, &x) in input[r0..r1].iter().enumerate() {
                    if x == 0 {
                        continue;
                    }
                    let row = &wblock[dr * m..(dr + 1) * m];
                    for (acc, &w) in o.iter_mut().zip(row) {
                        *acc += x * w;
                    }
                }
            }
        }
    }

    /// [`CrossbarArray::vmm_batch`] at an explicit precision tier: the
    /// same exact-vs-analog dispatch, with the ideal path staging
    /// truncated inputs through the scratch and the analog path dropping
    /// phase buckets batch-wide. `Full` is bit-identical to
    /// [`CrossbarArray::vmm_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * weight_cols`.
    pub fn vmm_batch_at(
        &self,
        inputs: &[i64],
        n: usize,
        scratch: &mut VmmScratch,
        out: &mut [i64],
        prec: ExecPrecision,
    ) {
        assert_eq!(inputs.len(), n * self.rows, "inputs must be n x rows");
        assert_eq!(
            out.len(),
            n * self.weight_cols,
            "out must be n x weight_cols"
        );
        if !self.is_ideal() {
            self.vmm_analog_batch_at(inputs, n, scratch, out, prec);
            return;
        }
        let dropped = self.effective_dropped_bits(prec);
        if dropped == 0 {
            self.vmm_batch(inputs, n, scratch, out);
            return;
        }
        // Stage the truncated batch, then reuse the exact path (which
        // never touches the scratch when ideal, so lending the buffer out
        // is safe and keeps its allocation).
        let mut trunc = std::mem::take(&mut scratch.trunc);
        trunc.clear();
        trunc.extend(inputs.iter().map(|&x| Self::truncate_input(x, dropped)));
        self.vmm_batch(&trunc, n, scratch, out);
        scratch.trunc = trunc;
    }

    /// Vector-matrix multiply through the configured model: the fast exact
    /// path when the configuration is ideal, the full analog pipeline
    /// otherwise (the two are bit-identical in the ideal case, see the
    /// property tests).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn vmm(&self, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.weight_cols];
        self.vmm_into(input, &mut VmmScratch::new(), &mut out);
        out
    }

    /// Allocation-free [`CrossbarArray::vmm`]: dispatches between
    /// [`CrossbarArray::vmm_exact_into`] and
    /// [`CrossbarArray::vmm_analog_into`], writing the result into `out`.
    /// `scratch` is only touched on the analog path.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    pub fn vmm_into(&self, input: &[i64], scratch: &mut VmmScratch, out: &mut [i64]) {
        if self.is_ideal() {
            self.vmm_exact_into(input, out);
        } else {
            self.vmm_analog_into(input, scratch, out);
        }
    }

    /// [`CrossbarArray::vmm_into`] at an explicit precision tier: the
    /// ideal path truncates the input's dropped low bits and runs the
    /// exact kernel; the analog path simply skips the dropped phase
    /// buckets ([`CrossbarArray::vmm_analog_into_at`]) — the two
    /// degradations are the same function of the input, so either path's
    /// deviation from [`ExecPrecision::Full`] obeys
    /// [`CrossbarArray::truncation_error_bound`]. `Full` is bit-identical
    /// to [`CrossbarArray::vmm_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    pub fn vmm_into_at(
        &self,
        input: &[i64],
        scratch: &mut VmmScratch,
        out: &mut [i64],
        prec: ExecPrecision,
    ) {
        if !self.is_ideal() {
            self.vmm_analog_into_at(input, scratch, out, prec);
            return;
        }
        let dropped = self.effective_dropped_bits(prec);
        if dropped == 0 {
            self.vmm_exact_into(input, out);
            return;
        }
        scratch.trunc.clear();
        scratch
            .trunc
            .extend(input.iter().map(|&x| Self::truncate_input(x, dropped)));
        self.vmm_exact_into(&scratch.trunc, out);
    }

    /// Fallible wrapper over [`CrossbarArray::vmm`].
    ///
    /// # Errors
    ///
    /// * [`XbarError::InputLengthMismatch`] on a wrong-sized vector;
    /// * [`XbarError::InputOutOfRange`] when a value exceeds
    ///   `±(2^(input_bits-1) - 1)`.
    pub fn vmm_checked(&self, input: &[i64]) -> Result<Vec<i64>, XbarError> {
        if input.len() != self.rows {
            return Err(XbarError::InputLengthMismatch {
                rows: self.rows,
                input: input.len(),
            });
        }
        let bound = self.cfg.input_bound();
        if let Some(&x) = input.iter().find(|x| x.abs() > bound) {
            return Err(XbarError::InputOutOfRange { value: x, bound });
        }
        Ok(self.vmm(input))
    }

    /// Full analog-pipeline simulation: bit-serial input phases, analog
    /// column currents, dummy-column baseline cancellation,
    /// integrate-and-fire conversion, shift-add recombination.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn vmm_analog(&self, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.weight_cols];
        self.vmm_analog_into(input, &mut VmmScratch::new(), &mut out);
        out
    }

    /// Allocation-free [`CrossbarArray::vmm_analog`], built on the
    /// programming-time frozen structures:
    ///
    /// 1. the input is decomposed **once** into the per-phase active-row
    ///    sets (counting sort over `2 × input magnitude bits` buckets)
    ///    instead of rescanning every row per bit × polarity;
    /// 2. each phase sums **contiguous row slices** of the
    ///    effective-current plane — streaming additions the compiler can
    ///    vectorize — instead of strided column-outer gathers that
    ///    re-derive every cell's wire droop;
    /// 3. the per-column sums are quantized and recombined through the
    ///    frozen per-weight column map.
    ///
    /// Per column within a phase the additions happen in the same
    /// ascending-row `f64` order as the reference pipeline, so the result
    /// is **bit-identical** to [`CrossbarArray::vmm_analog_reference`]
    /// for every configuration (golden-equivalence property tests).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    pub fn vmm_analog_into(&self, input: &[i64], scratch: &mut VmmScratch, out: &mut [i64]) {
        self.vmm_analog_into_at(input, scratch, out, ExecPrecision::Full);
    }

    /// [`CrossbarArray::vmm_analog_into`] at an explicit precision tier.
    ///
    /// The tier's dropped bits set the low edge of the phase window and a
    /// cheap activation-range scan sets the high edge (bits no input
    /// reaches never pulse — a lossless cut, since their buckets would be
    /// empty anyway). Truncation happens *by construction*: dropping the
    /// `k` lowest phase buckets of the decomposition is elementwise
    /// identical to running the full pipeline on
    /// `sign(x)·((|x| >> k) << k)`, so the [`ExecPrecision::Full`] result
    /// minus the degraded result is exactly the dropped buckets'
    /// contribution — the quantity
    /// [`CrossbarArray::truncation_error_bound`] bounds.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    pub fn vmm_analog_into_at(
        &self,
        input: &[i64],
        scratch: &mut VmmScratch,
        out: &mut [i64],
        prec: ExecPrecision,
    ) {
        assert_eq!(input.len(), self.rows, "input length must match rows");
        assert_eq!(out.len(), self.weight_cols, "output length must match");
        let lo = self.effective_dropped_bits(prec);
        let hi = self.live_hi_bit(input, lo);

        scratch.acc.clear();
        scratch.acc.resize(self.weight_cols, 0i128);
        scratch.currents.clear();
        scratch.currents.resize(self.phys_cols, 0.0f64);
        self.decompose_phases(
            input,
            lo,
            hi,
            &mut scratch.phase_off,
            &mut scratch.cursors,
            &mut scratch.phase_rows,
        );

        // Two polarity phases per live magnitude bit: analog sums cannot
        // carry input signs, so positive-sign and negative-sign rows pulse
        // in separate phases and subtract digitally (standard practice).
        for bit in lo..hi {
            for polarity in [1i64, -1i64] {
                let p = 2 * (bit - lo) as usize + usize::from(polarity < 0);
                let start = scratch.phase_off[p] as usize;
                let end = scratch.phase_off[p + 1] as usize;
                if start == end {
                    continue;
                }
                self.sum_active_rows(&scratch.phase_rows[start..end], &mut scratch.currents);
                let phase_scale = polarity * (1i64 << bit);
                self.recombine_phase(
                    &scratch.currents,
                    end - start,
                    phase_scale,
                    &mut scratch.acc,
                );
            }
        }

        for (o, &v) in out.iter_mut().zip(scratch.acc.iter()) {
            *o = i64::try_from(v).expect("accumulator overflow");
        }
    }

    /// Phase-major batched analog VMM: `n` input vectors, flattened
    /// row-major into `inputs` (`n × rows`), produce `n × weight_cols`
    /// results in `out` — the analog analogue of
    /// [`CrossbarArray::vmm_batch`]'s cache blocking.
    ///
    /// When the effective-current plane is too large to stay resident
    /// between per-input passes ([`CrossbarArray::analog_batching_pays`]),
    /// every batch member's phases are decomposed up front and each
    /// conversion phase streams **row blocks of the plane across the
    /// whole batch**: a block's rows are summed into every input's column
    /// currents while the block is hot, so plane traffic is paid once per
    /// block per phase instead of once per input. Below the threshold (or
    /// for a single input) the call is a per-input
    /// [`CrossbarArray::vmm_analog_into`] loop over the shared scratch.
    ///
    /// Either way each input's per-column additions happen in the same
    /// ascending-row order, so results are bit-identical to `n`
    /// single-input calls (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * weight_cols`.
    pub fn vmm_analog_batch(
        &self,
        inputs: &[i64],
        n: usize,
        scratch: &mut VmmScratch,
        out: &mut [i64],
    ) {
        self.vmm_analog_batch_at(inputs, n, scratch, out, ExecPrecision::Full);
    }

    /// [`CrossbarArray::vmm_analog_batch`] at an explicit precision tier:
    /// the phase window (tier-dropped low bits, range-scanned high cap)
    /// applies batch-wide, so a degraded batch sweeps the plane for
    /// strictly fewer phases. See
    /// [`CrossbarArray::vmm_analog_into_at`] for the truncation identity.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * weight_cols`.
    pub fn vmm_analog_batch_at(
        &self,
        inputs: &[i64],
        n: usize,
        scratch: &mut VmmScratch,
        out: &mut [i64],
        prec: ExecPrecision,
    ) {
        assert_eq!(inputs.len(), n * self.rows, "inputs must be n x rows");
        assert_eq!(
            out.len(),
            n * self.weight_cols,
            "out must be n x weight_cols"
        );
        if n <= 1 || !self.analog_batching_pays() {
            for (input, o) in inputs
                .chunks_exact(self.rows)
                .zip(out.chunks_exact_mut(self.weight_cols))
            {
                self.vmm_analog_into_at(input, scratch, o, prec);
            }
            return;
        }
        self.analog_batch_phase_major_at(inputs, n, scratch, out, prec);
    }

    /// The phase-major row-blocked kernel behind
    /// [`CrossbarArray::vmm_analog_batch`]. Exposed (hidden) so the
    /// golden-equivalence tests can exercise it directly on arrays below
    /// the pays-off threshold, where the public entry point would take
    /// the per-input fallback; production code should always go through
    /// [`CrossbarArray::vmm_analog_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * weight_cols`.
    #[doc(hidden)]
    pub fn analog_batch_phase_major(
        &self,
        inputs: &[i64],
        n: usize,
        scratch: &mut VmmScratch,
        out: &mut [i64],
    ) {
        self.analog_batch_phase_major_at(inputs, n, scratch, out, ExecPrecision::Full);
    }

    /// Tier-parameterized [`CrossbarArray::analog_batch_phase_major`]:
    /// the same row-blocked kernel over the `[dropped, range-scanned)`
    /// phase window.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * weight_cols`.
    #[doc(hidden)]
    pub fn analog_batch_phase_major_at(
        &self,
        inputs: &[i64],
        n: usize,
        scratch: &mut VmmScratch,
        out: &mut [i64],
        prec: ExecPrecision,
    ) {
        assert_eq!(inputs.len(), n * self.rows, "inputs must be n x rows");
        assert_eq!(
            out.len(),
            n * self.weight_cols,
            "out must be n x weight_cols"
        );
        let lo = self.effective_dropped_bits(prec);
        let hi = self.live_hi_bit(inputs, lo);
        let n_phases = 2 * (hi - lo) as usize;
        let pc = self.phys_cols;
        let wc = self.weight_cols;
        let plane = self.plane();

        scratch.batch_acc.clear();
        scratch.batch_acc.resize(n * wc, 0i128);
        scratch.batch_currents.clear();
        scratch.batch_currents.resize(n * pc, 0.0f64);
        self.decompose_phases(
            inputs,
            lo,
            hi,
            &mut scratch.phase_off,
            &mut scratch.cursors,
            &mut scratch.phase_rows,
        );

        // One plane block stays hot while every input of the batch sums
        // the active rows it owns inside the block.
        const ROW_BLOCK: usize = 64;
        for bit in lo..hi {
            for polarity in [1i64, -1i64] {
                let p = 2 * (bit - lo) as usize + usize::from(polarity < 0);
                let empty = (0..n).all(|k| {
                    scratch.phase_off[k * n_phases + p] == scratch.phase_off[k * n_phases + p + 1]
                });
                if empty {
                    continue;
                }
                scratch.batch_currents.fill(0.0);
                scratch.cursors.clear();
                scratch
                    .cursors
                    .extend((0..n).map(|k| scratch.phase_off[k * n_phases + p]));
                for r0 in (0..self.rows).step_by(ROW_BLOCK) {
                    let r1 = (r0 + ROW_BLOCK).min(self.rows);
                    for (k, cur) in scratch.cursors.iter_mut().enumerate() {
                        let bucket_end = scratch.phase_off[k * n_phases + p + 1];
                        let currents = &mut scratch.batch_currents[k * pc..(k + 1) * pc];
                        while *cur < bucket_end {
                            let r = scratch.phase_rows[*cur as usize] as usize;
                            if r >= r1 {
                                break;
                            }
                            let row = &plane[r * pc..(r + 1) * pc];
                            for (c, &i) in currents.iter_mut().zip(row) {
                                *c += i;
                            }
                            *cur += 1;
                        }
                    }
                }
                let phase_scale = polarity * (1i64 << bit);
                for k in 0..n {
                    let len = (scratch.phase_off[k * n_phases + p + 1]
                        - scratch.phase_off[k * n_phases + p])
                        as usize;
                    if len == 0 {
                        continue;
                    }
                    self.recombine_phase(
                        &scratch.batch_currents[k * pc..(k + 1) * pc],
                        len,
                        phase_scale,
                        &mut scratch.batch_acc[k * wc..(k + 1) * wc],
                    );
                }
            }
        }

        for (o, &v) in out.iter_mut().zip(scratch.batch_acc.iter()) {
            *o = i64::try_from(v).expect("accumulator overflow");
        }
    }

    /// Signed input magnitude bits streamed bit-serially (sign handled by
    /// the polarity phases).
    fn input_mag_bits(&self) -> u32 {
        self.cfg.input_bits.saturating_sub(1).max(1)
    }

    /// Low magnitude bits actually dropped at `prec` on this array: the
    /// tier's nominal count clamped so at least one bit stays live (a
    /// 4-bit-input array browns out by 2 bits, not 4).
    fn effective_dropped_bits(&self, prec: ExecPrecision) -> u32 {
        prec.dropped_bits().min(self.input_mag_bits() - 1)
    }

    /// The activation-range scan: one past the highest magnitude bit any
    /// input reaches, clamped to `[lo, mag_bits]`. Bits at or above the
    /// result have empty phase buckets, so capping the window there is
    /// lossless — the decomposition just never builds them.
    fn live_hi_bit(&self, inputs: &[i64], lo: u32) -> u32 {
        let max_mag = inputs.iter().map(|x| x.unsigned_abs()).max().unwrap_or(0);
        (u64::BITS - max_mag.leading_zeros()).clamp(lo, self.input_mag_bits())
    }

    /// Truncates `x` to its magnitude bits at or above `dropped`:
    /// `sign(x) · ((|x| >> dropped) << dropped)` — elementwise what the
    /// analog path's dropped phase buckets amount to.
    fn truncate_input(x: i64, dropped: u32) -> i64 {
        let mag = ((x.unsigned_abs() >> dropped) << dropped) as i64;
        if x < 0 {
            -mag
        } else {
            mag
        }
    }

    /// Decomposes `inputs` (one or more concatenated input vectors of
    /// `self.rows` entries) into per-phase active-row buckets by counting
    /// sort over the live bit window `[lo, hi)`: bucket
    /// `k·(2·(hi-lo)) + 2·(bit-lo) + polarity` holds the rows of input
    /// `k` that pulse in that phase, in ascending row order — the order
    /// the `f64` per-column summation contract requires. The full-
    /// precision decomposition is `lo = 0`, `hi = mag_bits`; a brownout
    /// tier raises `lo` (lossy, bounded) and the activation-range scan
    /// lowers `hi` (lossless) so fewer buckets are built and swept.
    fn decompose_phases(
        &self,
        inputs: &[i64],
        lo: u32,
        hi: u32,
        off: &mut Vec<u32>,
        cursors: &mut Vec<u32>,
        rows_out: &mut Vec<u32>,
    ) {
        let n_phases = 2 * (hi - lo) as usize;
        let buckets = (inputs.len() / self.rows) * n_phases;
        off.clear();
        off.resize(buckets + 1, 0u32);
        for (k, input) in inputs.chunks_exact(self.rows).enumerate() {
            let base = k * n_phases;
            for &x in input {
                if x == 0 {
                    continue;
                }
                let pol = usize::from(x < 0);
                let mag = x.unsigned_abs();
                for bit in lo..hi {
                    if (mag >> bit) & 1 == 1 {
                        off[base + 2 * (bit - lo) as usize + pol + 1] += 1;
                    }
                }
            }
        }
        for b in 0..buckets {
            off[b + 1] += off[b];
        }
        cursors.clear();
        cursors.extend_from_slice(&off[..buckets]);
        rows_out.clear();
        rows_out.resize(off[buckets] as usize, 0u32);
        for (k, input) in inputs.chunks_exact(self.rows).enumerate() {
            let base = k * n_phases;
            for (r, &x) in input.iter().enumerate() {
                if x == 0 {
                    continue;
                }
                let pol = usize::from(x < 0);
                let mag = x.unsigned_abs();
                for bit in lo..hi {
                    if (mag >> bit) & 1 == 1 {
                        let cur = &mut cursors[base + 2 * (bit - lo) as usize + pol];
                        rows_out[*cur as usize] = r as u32;
                        *cur += 1;
                    }
                }
            }
        }
    }

    /// Sums the active rows' effective currents per physical column: one
    /// streaming add of each active row's contiguous plane slice, in
    /// ascending row order (the bit-exactness contract of the pipeline —
    /// per column this is the same `f64` addition sequence the reference
    /// column-outer loop performs).
    fn sum_active_rows(&self, active: &[u32], currents: &mut [f64]) {
        currents.fill(0.0);
        let plane = self.plane();
        for &r in active {
            let base = r as usize * self.phys_cols;
            let row = &plane[base..base + self.phys_cols];
            for (c, &i) in currents.iter_mut().zip(row) {
                *c += i;
            }
        }
    }

    /// One phase's conversion + recombination: cancels the `g_min`
    /// baseline (the dummy column sources `V·g_min` per active row),
    /// quantizes each physical column through the ADC model, and
    /// shift-adds the counts into the per-weight accumulators via the
    /// frozen column map, scaled by the phase's `polarity · 2^bit`.
    fn recombine_phase(
        &self,
        currents: &[f64],
        active_len: usize,
        phase_scale: i64,
        acc: &mut [i128],
    ) {
        let v_read = self.cfg.cell.read_voltage;
        // The dummy (baseline) column sits next to the sense amps, so its
        // reference current sees the same droop statistics as a column-0
        // read; first-order, the baseline stays V·g_min per active row.
        let baseline = active_len as f64 * v_read * self.g_min;
        let lsb = v_read * self.g_step;
        let slices = self.cfg.slices();
        let scale = i128::from(phase_scale);
        match self.cfg.scheme {
            WeightScheme::Differential => {
                for (a, cols) in acc.iter_mut().zip(self.recomb.chunks_exact(slices)) {
                    let mut val = 0i128;
                    for sc in cols {
                        let pos = self
                            .cfg
                            .adc
                            .quantize((currents[sc.pos as usize] - baseline) / lsb);
                        let neg = self
                            .cfg
                            .adc
                            .quantize((currents[sc.neg as usize] - baseline) / lsb);
                        val += i128::from(pos - neg) << sc.shift;
                    }
                    *a += val * scale;
                }
            }
            WeightScheme::OffsetBinary => {
                // Reference: every active row contributes the fixed offset
                // 2^(wb-1) in each weight, summed digitally from the known
                // pulse count (the hardware's dummy reference column).
                let ref_sum = i128::from(1i64 << (self.cfg.weight_bits - 1)) * active_len as i128;
                for (a, cols) in acc.iter_mut().zip(self.recomb.chunks_exact(slices)) {
                    let mut val = 0i128;
                    for sc in cols {
                        let count = self
                            .cfg
                            .adc
                            .quantize((currents[sc.pos as usize] - baseline) / lsb);
                        val += i128::from(count) << sc.shift;
                    }
                    *a += (val - ref_sum) * scale;
                }
            }
        }
    }

    /// Worst-case elementwise output error of serving at `prec` instead
    /// of [`ExecPrecision::Full`], in output LSBs (as a `f64` — the
    /// analog case folds conversion thresholds that are not integral).
    ///
    /// See [`CrossbarArray::truncation_error_bound_bits`]; the tier's
    /// dropped-bit count is clamped exactly as execution clamps it.
    pub fn truncation_error_bound(&self, prec: ExecPrecision) -> f64 {
        self.truncation_error_bound_bits(prec.dropped_bits())
    }

    /// Worst-case elementwise output error of dropping the `dropped_bits`
    /// lowest input magnitude bits (clamped so one bit stays live, as
    /// execution clamps it), over **all** admissible inputs. Monotone
    /// nondecreasing in `dropped_bits` by construction.
    ///
    /// * Ideal (exact-path) arrays: dropping `k` bits perturbs each input
    ///   by at most `2^k - 1` toward zero, so the error is exactly
    ///   bounded by `(2^k - 1) · max_m Σ_r |W[r,m]|` — and that bound is
    ///   attained (every residue at `2^k - 1`, signs aligned with the
    ///   worst column), so it is tight.
    /// * Analog arrays: the degraded output differs from `Full` by
    ///   exactly the dropped phase buckets' contribution. Each phase's
    ///   recombined value is bounded through the frozen effective-current
    ///   plane: for any active-row set, a physical column's
    ///   baseline-cancelled count lies between quantizing the column's
    ///   summed negative deviations and its summed positive deviations
    ///   (the ADC is monotone), which bounds each shift-add slice, each
    ///   weight column, and therefore the phase. Phase `(bit b, ±)`
    ///   contributes at scale `2^b`, so the total over both polarities of
    ///   bits `0..k` is `2·(2^k - 1)` times the per-phase bound.
    pub fn truncation_error_bound_bits(&self, dropped_bits: u32) -> f64 {
        let k = dropped_bits.min(self.input_mag_bits() - 1);
        if k == 0 {
            return 0.0;
        }
        let residues = ((1u64 << k) - 1) as f64;
        if self.is_ideal() {
            let worst_col = (0..self.weight_cols)
                .map(|m| {
                    (0..self.rows)
                        .map(|r| i128::from(self.weights[r * self.weight_cols + m].unsigned_abs()))
                        .sum::<i128>()
                })
                .max()
                .unwrap_or(0);
            residues * worst_col as f64
        } else {
            // Σ_{b<k} 2^b · (two polarity phases) = 2·(2^k − 1).
            2.0 * residues * self.phase_value_bound()
        }
    }

    /// Worst-case |recombined value| of any single conversion phase over
    /// any active-row set, from the frozen plane: per physical column,
    /// split every cell's baseline-cancelled deviation into its positive
    /// and negative parts — any subset's summed deviation lies between
    /// `−N_col` and `P_col`, and the ADC's monotonicity carries the
    /// interval through quantization, the shift-add slices, and (for
    /// offset binary) the `[0, 2^(wb−1)·rows]` reference-sum range.
    fn phase_value_bound(&self) -> f64 {
        let plane = self.plane();
        let v_read = self.cfg.cell.read_voltage;
        let lsb = v_read * self.g_step;
        let baseline_per_row = v_read * self.g_min;
        let mut pos = vec![0.0f64; self.phys_cols];
        let mut neg = vec![0.0f64; self.phys_cols];
        for (idx, &i_eff) in plane.iter().enumerate() {
            let d = i_eff - baseline_per_row;
            if d >= 0.0 {
                pos[idx % self.phys_cols] += d;
            } else {
                neg[idx % self.phys_cols] -= d;
            }
        }
        let q_hi = |col: u32| self.cfg.adc.quantize(pos[col as usize] / lsb);
        let q_lo = |col: u32| self.cfg.adc.quantize(-neg[col as usize] / lsb);
        let slices = self.cfg.slices();
        let mut worst = 0u128;
        match self.cfg.scheme {
            WeightScheme::Differential => {
                for cols in self.recomb.chunks_exact(slices) {
                    let mut upper = 0i128;
                    let mut lower = 0i128;
                    for sc in cols {
                        upper += i128::from(q_hi(sc.pos) - q_lo(sc.neg)) << sc.shift;
                        lower += i128::from(q_lo(sc.pos) - q_hi(sc.neg)) << sc.shift;
                    }
                    worst = worst.max(upper.unsigned_abs().max(lower.unsigned_abs()));
                }
            }
            WeightScheme::OffsetBinary => {
                let ref_max = i128::from(1i64 << (self.cfg.weight_bits - 1)) * self.rows as i128;
                for cols in self.recomb.chunks_exact(slices) {
                    let mut upper = 0i128;
                    let mut lower = 0i128;
                    for sc in cols {
                        upper += i128::from(q_hi(sc.pos)) << sc.shift;
                        lower += i128::from(q_lo(sc.pos)) << sc.shift;
                    }
                    lower -= ref_max;
                    worst = worst.max(upper.unsigned_abs().max(lower.unsigned_abs()));
                }
            }
        }
        worst as f64
    }

    /// The original per-phase-recompute analog pipeline, kept verbatim as
    /// the golden reference: every phase rescans all rows for its active
    /// set, and every cell's wire droop is re-derived from the
    /// conductance matrix inside a column-outer strided loop — no
    /// effective-current plane, no frozen column map.
    ///
    /// [`CrossbarArray::vmm_analog_into`] must stay **bit-identical** to
    /// this for every scheme × ADC × IR-drop × drift combination; the
    /// golden-equivalence property tests assert it, and the `analog`
    /// criterion bench measures what the precomputation buys.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    #[allow(clippy::needless_range_loop)] // strided views; indexing reads clearer
    pub fn vmm_analog_reference(&self, input: &[i64]) -> Vec<i64> {
        assert_eq!(input.len(), self.rows, "input length must match rows");
        let input_mag_bits = self.input_mag_bits();
        let v_read = self.cfg.cell.read_voltage;
        let ir = &self.cfg.ir_drop;
        let slices = self.cfg.slices();
        let per_weight = self.cfg.phys_cols_per_weight();
        let bpc = self.cfg.cell.bits_per_cell;
        let lsb = v_read * self.g_step;

        let mut acc = vec![0i128; self.weight_cols];
        let mut col_counts = vec![0i64; self.phys_cols];
        for bit in 0..input_mag_bits {
            for polarity in [1i64, -1i64] {
                let active: Vec<usize> = (0..self.rows)
                    .filter(|&r| {
                        let x = input[r];
                        x.signum() == polarity && (x.unsigned_abs() >> bit) & 1 == 1
                    })
                    .collect();
                if active.is_empty() {
                    continue;
                }
                let baseline = active.len() as f64 * v_read * self.g_min;
                for col in 0..self.phys_cols {
                    let mut current = 0.0f64;
                    for &r in &active {
                        let g = self.conductance[r * self.phys_cols + col];
                        current += ir.cell_current_a(v_read, g, r, col, self.rows);
                    }
                    col_counts[col] = self.cfg.adc.quantize((current - baseline) / lsb);
                }
                let phase_scale = polarity * (1i64 << bit);
                match self.cfg.scheme {
                    WeightScheme::Differential => {
                        for m in 0..self.weight_cols {
                            let mut val = 0i128;
                            for s in 0..slices {
                                let base = m * per_weight + 2 * s;
                                let diff = col_counts[base] - col_counts[base + 1];
                                val += i128::from(diff) << ((s as u32) * bpc);
                            }
                            acc[m] += val * i128::from(phase_scale);
                        }
                    }
                    WeightScheme::OffsetBinary => {
                        let offset = i128::from(1i64 << (self.cfg.weight_bits - 1));
                        let ref_sum = offset * active.len() as i128;
                        for m in 0..self.weight_cols {
                            let mut val = 0i128;
                            for s in 0..slices {
                                let base = m * per_weight + s;
                                val += i128::from(col_counts[base]) << ((s as u32) * bpc);
                            }
                            acc[m] += (val - ref_sum) * i128::from(phase_scale);
                        }
                    }
                }
            }
        }

        acc.iter()
            .map(|&v| i64::try_from(v).expect("accumulator overflow"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_weights(rows: usize, cols: usize) -> Vec<Vec<i64>> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * 31 + c * 7) as i64 % 255) - 127)
                    .collect()
            })
            .collect()
    }

    /// A lineup of non-ideal configurations spanning scheme x ADC x
    /// IR-drop x drift (plus variation and faults).
    fn nonideal_lineup() -> Vec<XbarConfig> {
        let mut cfgs = vec![
            XbarConfig::noisy(0.02, 0.001, 0.0005, 7),
            XbarConfig::preset("variation").unwrap(),
            XbarConfig::preset("adc").unwrap(),
            XbarConfig::preset("ir-drop").unwrap(),
            XbarConfig::preset("full").unwrap(),
        ];
        let offset: Vec<XbarConfig> = cfgs
            .iter()
            .map(|c| XbarConfig {
                scheme: WeightScheme::OffsetBinary,
                ..*c
            })
            .collect();
        cfgs.extend(offset);
        cfgs
    }

    #[test]
    fn exact_vmm_matches_hand_computation() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &[vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(a.vmm_exact(&[5, 6]), vec![5 + 18, 10 + 24]);
    }

    #[test]
    fn analog_matches_exact_differential() {
        let cfg = XbarConfig::ideal();
        let w = ramp_weights(17, 5);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let input: Vec<i64> = (0..17).map(|i| ((i * 13) % 255) as i64 - 127).collect();
        assert_eq!(a.vmm_analog(&input), a.vmm_exact(&input));
    }

    #[test]
    fn analog_matches_exact_offset_binary() {
        let cfg = XbarConfig {
            scheme: WeightScheme::OffsetBinary,
            ..XbarConfig::ideal()
        };
        let w = ramp_weights(11, 4);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let input: Vec<i64> = (0..11).map(|i| ((i * 29) % 200) as i64 - 100).collect();
        assert_eq!(a.vmm_analog(&input), a.vmm_exact(&input));
    }

    #[test]
    fn planned_analog_matches_reference_across_nonideal_configs() {
        for (i, cfg) in nonideal_lineup().into_iter().enumerate() {
            let a = CrossbarArray::program(&cfg, &ramp_weights(23, 5)).unwrap();
            let input: Vec<i64> = (0..23).map(|i| ((i * 19) % 255) as i64 - 127).collect();
            assert_eq!(
                a.vmm_analog(&input),
                a.vmm_analog_reference(&input),
                "config {i} ({:?} scheme)",
                cfg.scheme
            );
        }
    }

    #[test]
    fn vmm_dispatches_to_exact_when_ideal() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(4, 3)).unwrap();
        let x = vec![1, -2, 3, -4];
        assert_eq!(a.vmm(&x), a.vmm_exact(&x));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(6, 2)).unwrap();
        assert_eq!(a.vmm_analog(&[0; 6]), vec![0, 0]);
    }

    #[test]
    fn saturating_adc_clips_large_sums() {
        // 64 rows of max weight, max input: per-phase column counts far
        // exceed 3 bits -> saturation must reduce the result magnitude.
        let mut cfg = XbarConfig::ideal();
        cfg.adc = AdcModel::Saturating { bits: 3 };
        let w = vec![vec![127i64]; 64];
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x = vec![127i64; 64];
        let exact: i64 = a.vmm_exact(&x)[0];
        let analog = a.vmm_analog(&x)[0];
        assert!(
            analog < exact,
            "saturated {analog} must be below exact {exact}"
        );
        assert!(analog > 0);
    }

    #[test]
    fn variation_perturbs_but_preserves_scale() {
        let cfg = XbarConfig::noisy(0.02, 0.0, 0.0, 99);
        let w = ramp_weights(32, 4);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x: Vec<i64> = (0..32).map(|i| (i % 100) as i64).collect();
        let exact = a.vmm_exact(&x);
        let noisy = a.vmm(&x);
        for (e, n) in exact.iter().zip(&noisy) {
            let denom = (e.abs().max(100)) as f64;
            assert!(
                ((e - n).abs() as f64) / denom < 0.5,
                "noisy {n} too far from exact {e}"
            );
        }
    }

    #[test]
    fn stuck_off_everything_zeroes_output() {
        let cfg = XbarConfig::noisy(0.0, 1.0, 0.0, 5); // all cells stuck off
        let w = ramp_weights(8, 3);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x = vec![50i64; 8];
        assert_eq!(a.vmm(&x), vec![0, 0, 0]);
    }

    #[test]
    fn weight_out_of_range_rejected() {
        let cfg = XbarConfig::ideal();
        assert!(matches!(
            CrossbarArray::program(&cfg, &[vec![128]]),
            Err(XbarError::WeightOutOfRange {
                value: 128,
                bound: 127
            })
        ));
        assert!(CrossbarArray::program(&cfg, &[vec![-127]]).is_ok());
    }

    #[test]
    fn ragged_and_empty_matrices_rejected() {
        let cfg = XbarConfig::ideal();
        assert!(CrossbarArray::program(&cfg, &[]).is_err());
        assert!(CrossbarArray::program(&cfg, &[vec![]]).is_err());
        assert!(CrossbarArray::program(&cfg, &[vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn vmm_checked_validates_input() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(3, 2)).unwrap();
        assert!(matches!(
            a.vmm_checked(&[1, 2]),
            Err(XbarError::InputLengthMismatch { rows: 3, input: 2 })
        ));
        assert!(matches!(
            a.vmm_checked(&[1, 2, 200]),
            Err(XbarError::InputOutOfRange {
                value: 200,
                bound: 127
            })
        ));
        assert!(a.vmm_checked(&[1, 2, 3]).is_ok());
    }

    #[test]
    fn geometry_accessors() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(5, 3)).unwrap();
        assert_eq!(a.rows(), 5);
        assert_eq!(a.weight_cols(), 3);
        assert_eq!(a.phys_cols(), 3 * cfg.phys_cols_per_weight());
        assert_eq!(a.weight(2, 1), (2 * 31 + 7) as i64 - 127);
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let ideal = XbarConfig::ideal();
        let noisy = XbarConfig::noisy(0.01, 0.002, 0.001, 42);
        for cfg in [ideal, noisy] {
            let a = CrossbarArray::program(&cfg, &ramp_weights(13, 6)).unwrap();
            let x: Vec<i64> = (0..13).map(|i| ((i * 17) % 255) as i64 - 127).collect();
            let mut scratch = VmmScratch::new();
            let mut out = vec![0i64; 6];
            a.vmm_into(&x, &mut scratch, &mut out);
            assert_eq!(out, a.vmm(&x));
            // Scratch reuse across calls with different inputs stays exact.
            let y: Vec<i64> = x.iter().map(|v| -v / 2).collect();
            a.vmm_into(&y, &mut scratch, &mut out);
            assert_eq!(out, a.vmm(&y));
        }
    }

    #[test]
    fn one_scratch_serves_arrays_of_different_geometry() {
        let cfg = XbarConfig::noisy(0.01, 0.0, 0.0, 3);
        let small = CrossbarArray::program(&cfg, &ramp_weights(4, 2)).unwrap();
        let big = CrossbarArray::program(&cfg, &ramp_weights(19, 7)).unwrap();
        let mut scratch = VmmScratch::new();
        let xs: Vec<i64> = (0..4).map(|i| i as i64 - 2).collect();
        let xb: Vec<i64> = (0..19).map(|i| (i * 3) as i64 - 20).collect();
        let mut os = vec![0i64; 2];
        let mut ob = vec![0i64; 7];
        big.vmm_into(&xb, &mut scratch, &mut ob);
        small.vmm_into(&xs, &mut scratch, &mut os);
        assert_eq!(ob, big.vmm(&xb));
        assert_eq!(os, small.vmm(&xs));
    }

    #[test]
    fn vmm_batch_bit_exact_vs_per_input() {
        // Small matrix: the cache-resident per-input path.
        // 2048 x 64 (exactly the 1 MiB blocking threshold): the blocked
        // path, with rows crossing several ROW_BLOCK seams.
        let cfg = XbarConfig::ideal();
        for (rows, cols) in [(150usize, 5usize), (2048, 64)] {
            let a = CrossbarArray::program(&cfg, &ramp_weights(rows, cols)).unwrap();
            let n = 3;
            let inputs: Vec<i64> = (0..n * rows)
                .map(|i| ((i * 31) % 255) as i64 - 127)
                .collect();
            let mut out = vec![0i64; n * cols];
            a.vmm_batch(&inputs, n, &mut VmmScratch::new(), &mut out);
            for (k, chunk) in inputs.chunks_exact(rows).enumerate() {
                assert_eq!(
                    &out[k * cols..(k + 1) * cols],
                    a.vmm_exact(chunk),
                    "input {k} of {rows}x{cols}"
                );
            }
        }
    }

    #[test]
    fn vmm_batch_falls_back_to_analog_when_noisy() {
        let cfg = XbarConfig::noisy(0.015, 0.001, 0.0, 9);
        let a = CrossbarArray::program(&cfg, &ramp_weights(24, 4)).unwrap();
        let n = 3;
        let inputs: Vec<i64> = (0..n * 24).map(|i| ((i * 13) % 200) as i64 - 99).collect();
        let mut out = vec![0i64; n * 4];
        a.vmm_batch(&inputs, n, &mut VmmScratch::new(), &mut out);
        for (k, chunk) in inputs.chunks_exact(24).enumerate() {
            assert_eq!(&out[k * 4..(k + 1) * 4], a.vmm(chunk), "input {k}");
        }
    }

    #[test]
    fn phase_major_batch_bit_exact_vs_reference_per_input() {
        // Call the phase-major kernel directly (these arrays sit far
        // below the pays-off threshold) across the non-ideal lineup,
        // against the seed reference pipeline.
        for (i, cfg) in nonideal_lineup().into_iter().enumerate() {
            let rows = 37;
            let cols = 4;
            let a = CrossbarArray::program(&cfg, &ramp_weights(rows, cols)).unwrap();
            let n = 3;
            let inputs: Vec<i64> = (0..n * rows)
                .map(|i| ((i * 23) % 255) as i64 - 127)
                .collect();
            let mut out = vec![0i64; n * cols];
            let mut scratch = VmmScratch::new();
            a.analog_batch_phase_major(&inputs, n, &mut scratch, &mut out);
            for (k, chunk) in inputs.chunks_exact(rows).enumerate() {
                assert_eq!(
                    &out[k * cols..(k + 1) * cols],
                    a.vmm_analog_reference(chunk),
                    "config {i}, input {k}"
                );
            }
        }
    }

    #[test]
    fn analog_batch_above_threshold_bit_exact_and_gated() {
        // 512 x 128 differential 8-bit: phys plane = 512 x 1024 f64 =
        // 4 MiB, exactly the phase-major threshold.
        let cfg = XbarConfig::noisy(0.02, 0.0005, 0.0, 17);
        let a = CrossbarArray::program(&cfg, &ramp_weights(512, 128)).unwrap();
        assert!(a.analog_batching_pays());
        assert!(a.vmm_batch_pays());
        assert!(!a.batching_pays()); // not ideal: no exact path to block
        let n = 3;
        let inputs: Vec<i64> = (0..n * 512)
            .map(|i| ((i * 29) % 255) as i64 - 127)
            .collect();
        let mut out = vec![0i64; n * 128];
        let mut scratch = VmmScratch::new();
        a.vmm_analog_batch(&inputs, n, &mut scratch, &mut out);
        for (k, chunk) in inputs.chunks_exact(512).enumerate() {
            assert_eq!(&out[k * 128..(k + 1) * 128], a.vmm(chunk), "input {k}");
        }
    }

    #[test]
    fn analog_batching_pays_tracks_plane_size_and_ideality() {
        let small_noisy =
            CrossbarArray::program(&XbarConfig::noisy(0.02, 0.0, 0.0, 1), &ramp_weights(24, 4))
                .unwrap();
        assert!(!small_noisy.analog_batching_pays());
        let big_ideal =
            CrossbarArray::program(&XbarConfig::ideal(), &ramp_weights(2048, 64)).unwrap();
        assert!(!big_ideal.analog_batching_pays()); // ideal: exact path instead
        assert!(big_ideal.vmm_batch_pays()); // weights = 1 MiB, exact blocking
    }

    #[test]
    fn is_ideal_tracks_configuration() {
        let a = CrossbarArray::program(&XbarConfig::ideal(), &ramp_weights(3, 2)).unwrap();
        assert!(a.is_ideal());
        let noisy =
            CrossbarArray::program(&XbarConfig::noisy(0.02, 0.0, 0.0, 1), &ramp_weights(3, 2))
                .unwrap();
        assert!(!noisy.is_ideal());
    }

    #[test]
    fn full_tier_is_bit_identical_everywhere() {
        let mut cfgs = nonideal_lineup();
        cfgs.push(XbarConfig::ideal());
        for (i, cfg) in cfgs.into_iter().enumerate() {
            let a = CrossbarArray::program(&cfg, &ramp_weights(21, 4)).unwrap();
            let x: Vec<i64> = (0..21).map(|i| ((i * 37) % 255) as i64 - 127).collect();
            let mut scratch = VmmScratch::new();
            let mut out = vec![0i64; 4];
            a.vmm_into_at(&x, &mut scratch, &mut out, ExecPrecision::Full);
            assert_eq!(out, a.vmm(&x), "config {i}");
            let n = 3;
            let inputs: Vec<i64> = (0..n * 21).map(|i| ((i * 11) % 255) as i64 - 127).collect();
            let mut bout = vec![0i64; n * 4];
            a.vmm_batch_at(&inputs, n, &mut scratch, &mut bout, ExecPrecision::Full);
            let mut bref = vec![0i64; n * 4];
            a.vmm_batch(&inputs, n, &mut scratch, &mut bref);
            assert_eq!(bout, bref, "config {i} batch");
        }
    }

    #[test]
    fn degraded_tier_equals_full_pipeline_on_truncated_inputs() {
        // The phase-window identity: skipping the k lowest buckets IS
        // running the full pipeline on inputs with those bits zeroed.
        for (i, cfg) in nonideal_lineup().into_iter().enumerate() {
            let a = CrossbarArray::program(&cfg, &ramp_weights(23, 5)).unwrap();
            let x: Vec<i64> = (0..23).map(|i| ((i * 19) % 255) as i64 - 127).collect();
            for prec in [ExecPrecision::Eco, ExecPrecision::Brownout] {
                let k = prec.dropped_bits();
                let trunc: Vec<i64> = x
                    .iter()
                    .map(|&v| CrossbarArray::truncate_input(v, k))
                    .collect();
                let mut scratch = VmmScratch::new();
                let mut out = vec![0i64; 5];
                a.vmm_into_at(&x, &mut scratch, &mut out, prec);
                assert_eq!(out, a.vmm_analog_reference(&trunc), "config {i} {prec}");
            }
        }
    }

    #[test]
    fn degraded_batch_matches_per_input_and_phase_major() {
        for (i, cfg) in nonideal_lineup().into_iter().enumerate() {
            let rows = 37;
            let cols = 4;
            let a = CrossbarArray::program(&cfg, &ramp_weights(rows, cols)).unwrap();
            let n = 3;
            let inputs: Vec<i64> = (0..n * rows)
                .map(|i| ((i * 23) % 255) as i64 - 127)
                .collect();
            for prec in [ExecPrecision::Eco, ExecPrecision::Brownout] {
                let mut scratch = VmmScratch::new();
                let mut batch = vec![0i64; n * cols];
                a.analog_batch_phase_major_at(&inputs, n, &mut scratch, &mut batch, prec);
                for (k, chunk) in inputs.chunks_exact(rows).enumerate() {
                    let mut one = vec![0i64; cols];
                    a.vmm_into_at(chunk, &mut scratch, &mut one, prec);
                    assert_eq!(
                        &batch[k * cols..(k + 1) * cols],
                        one.as_slice(),
                        "config {i}, input {k}, {prec}"
                    );
                }
            }
        }
    }

    #[test]
    fn ideal_tier_truncates_the_exact_path() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(13, 3)).unwrap();
        let x: Vec<i64> = (0..13).map(|i| ((i * 41) % 255) as i64 - 127).collect();
        let trunc: Vec<i64> = x
            .iter()
            .map(|&v| CrossbarArray::truncate_input(v, 4))
            .collect();
        let mut scratch = VmmScratch::new();
        let mut out = vec![0i64; 3];
        a.vmm_into_at(&x, &mut scratch, &mut out, ExecPrecision::Brownout);
        assert_eq!(out, a.vmm_exact(&trunc));
        let n = 2;
        let inputs: Vec<i64> = (0..n * 13).map(|i| ((i * 7) % 255) as i64 - 127).collect();
        let mut bout = vec![0i64; n * 3];
        a.vmm_batch_at(&inputs, n, &mut scratch, &mut bout, ExecPrecision::Brownout);
        for (k, chunk) in inputs.chunks_exact(13).enumerate() {
            let t: Vec<i64> = chunk
                .iter()
                .map(|&v| CrossbarArray::truncate_input(v, 4))
                .collect();
            assert_eq!(&bout[k * 3..(k + 1) * 3], a.vmm_exact(&t), "input {k}");
        }
    }

    #[test]
    fn error_bound_monotone_and_observed_within() {
        let mut cfgs = nonideal_lineup();
        cfgs.push(XbarConfig::ideal());
        for (i, cfg) in cfgs.into_iter().enumerate() {
            let a = CrossbarArray::program(&cfg, &ramp_weights(29, 4)).unwrap();
            let mut prev = 0.0f64;
            for k in 0..8 {
                let b = a.truncation_error_bound_bits(k);
                assert!(b >= prev, "config {i}: bound fell {prev} -> {b} at k={k}");
                prev = b;
            }
            assert_eq!(a.truncation_error_bound_bits(0), 0.0);
            let x: Vec<i64> = (0..29).map(|i| ((i * 31) % 255) as i64 - 127).collect();
            let full = a.vmm(&x);
            for prec in ExecPrecision::ALL {
                let mut scratch = VmmScratch::new();
                let mut out = vec![0i64; 4];
                a.vmm_into_at(&x, &mut scratch, &mut out, prec);
                let bound = a.truncation_error_bound(prec);
                for (m, (&got, &want)) in out.iter().zip(&full).enumerate() {
                    let err = (got - want).abs() as f64;
                    assert!(
                        err <= bound,
                        "config {i} {prec} col {m}: |{got} - {want}| = {err} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn dropped_bits_clamp_to_leave_one_live_bit() {
        let cfg = XbarConfig {
            input_bits: 4, // 3 magnitude bits: brownout's 4 clamps to 2
            ..XbarConfig::ideal()
        };
        let a = CrossbarArray::program(&cfg, &ramp_weights(5, 2)).unwrap();
        let x = vec![7, -6, 5, -4, 7];
        let mut scratch = VmmScratch::new();
        let mut out = vec![0i64; 2];
        a.vmm_into_at(&x, &mut scratch, &mut out, ExecPrecision::Brownout);
        let trunc: Vec<i64> = x
            .iter()
            .map(|&v| CrossbarArray::truncate_input(v, 2))
            .collect();
        assert_eq!(out, a.vmm_exact(&trunc));
        assert!(out.iter().any(|&v| v != 0), "one bit must stay live");
    }

    #[test]
    fn program_flat_equivalent_to_nested() {
        let cfg = XbarConfig::ideal();
        let nested = ramp_weights(4, 4);
        let flat: Vec<i64> = nested.iter().flatten().copied().collect();
        let a = CrossbarArray::program(&cfg, &nested).unwrap();
        let b = CrossbarArray::program_flat(&cfg, 4, 4, flat).unwrap();
        let x = vec![9, -8, 7, -6];
        assert_eq!(a.vmm_exact(&x), b.vmm_exact(&x));
    }
}
