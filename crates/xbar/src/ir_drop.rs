//! First-order IR-drop model for crossbar reads.
//!
//! Real crossbar wires have finite resistance, so a cell far from the
//! wordline driver (high column index) and far from the bitline sense node
//! (low row index) sees a reduced effective read voltage. The paper's
//! evaluation assumes ideal wires; this model is the repository's
//! extension for studying how the three mappings respond to parasitics —
//! relevant to RED because its sub-crossbars are `KH·KW×` shorter per line
//! than the monolithic zero-padding array, so the same wire technology
//! produces far less droop.
//!
//! The model is the standard first-order series-resistance approximation:
//! cell `(r, c)` conducts through `R_series = r_wire·(c + 1) + r_wire·(rows - r)`
//! (driver at column 0, sense at the last row), giving
//! `I = V / (1/G + R_series)` instead of `I = V·G`.
//!
//! Because the series resistance depends only on the cell's *position*
//! and its programmed conductance — both frozen once the array is written
//! — the droop is folded in at **programming time**:
//! `red_xbar::CrossbarArray::program` evaluates
//! [`IrDropModel::cell_current_a`] once per cell into its effective-current
//! plane, and the per-phase conversion path only ever streams and sums
//! those precomputed currents. Changing the wire model therefore requires
//! reprogramming the array, exactly like changing the weights would.

use serde::{Deserialize, Serialize};

/// Wire-parasitic configuration for the analog read path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrDropModel {
    /// Wire resistance per cell pitch, in ohms (0 disables the model;
    /// published crossbar wires run ~1–20 Ω per cell at scaled nodes).
    pub r_wire_per_cell_ohm: f64,
}

impl IrDropModel {
    /// Ideal wires: no droop.
    pub fn ideal() -> Self {
        Self {
            r_wire_per_cell_ohm: 0.0,
        }
    }

    /// A model with the given per-cell wire resistance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is negative.
    pub fn with_resistance(r_wire_per_cell_ohm: f64) -> Self {
        assert!(
            r_wire_per_cell_ohm >= 0.0,
            "wire resistance must be non-negative"
        );
        Self {
            r_wire_per_cell_ohm,
        }
    }

    /// `true` when the model changes nothing.
    pub fn is_ideal(&self) -> bool {
        self.r_wire_per_cell_ohm == 0.0
    }

    /// Series wire resistance seen by cell `(row, col)` in a
    /// `rows × cols` array: wordline run from the driver (column 0) plus
    /// bitline run to the sense node (below the last row).
    pub fn series_resistance_ohm(&self, row: usize, col: usize, rows: usize) -> f64 {
        self.r_wire_per_cell_ohm * ((col + 1) as f64 + (rows - row) as f64)
    }

    /// Effective current for a cell of conductance `g` read at `v`:
    /// `I = V / (1/G + R_series)`. Falls back to `V·G` for ideal wires and
    /// to zero for a fully-off cell.
    pub fn cell_current_a(&self, v: f64, g: f64, row: usize, col: usize, rows: usize) -> f64 {
        if g <= 0.0 {
            return 0.0;
        }
        if self.is_ideal() {
            return v * g;
        }
        v / (1.0 / g + self.series_resistance_ohm(row, col, rows))
    }
}

impl Default for IrDropModel {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_ohms_law() {
        let m = IrDropModel::ideal();
        assert!(m.is_ideal());
        let i = m.cell_current_a(0.2, 5e-5, 0, 100, 512);
        assert!((i - 0.2 * 5e-5).abs() < 1e-18);
    }

    #[test]
    fn droop_grows_with_distance() {
        let m = IrDropModel::with_resistance(10.0);
        // Far column sees more series resistance than near column.
        let near = m.cell_current_a(0.2, 5e-5, 511, 0, 512);
        let far = m.cell_current_a(0.2, 5e-5, 511, 1023, 512);
        assert!(far < near);
        // Row far from the sense node (row 0) droops more than the last row.
        let top = m.cell_current_a(0.2, 5e-5, 0, 0, 512);
        let bottom = m.cell_current_a(0.2, 5e-5, 511, 0, 512);
        assert!(top < bottom);
    }

    #[test]
    fn droop_is_bounded_by_ideal() {
        let m = IrDropModel::with_resistance(5.0);
        for (r, c) in [(0, 0), (10, 200), (511, 1023)] {
            let droop = m.cell_current_a(0.2, 5e-5, r, c, 512);
            assert!(droop > 0.0 && droop <= 0.2 * 5e-5);
        }
    }

    #[test]
    fn off_cell_conducts_nothing() {
        let m = IrDropModel::with_resistance(5.0);
        assert_eq!(m.cell_current_a(0.2, 0.0, 0, 0, 16), 0.0);
    }

    #[test]
    fn series_resistance_formula() {
        let m = IrDropModel::with_resistance(2.0);
        // col 3 (4 pitches from driver) + rows-row = 8-2 = 6 pitches.
        assert_eq!(m.series_resistance_ohm(2, 3, 8), 2.0 * (4.0 + 6.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_resistance_panics() {
        let _ = IrDropModel::with_resistance(-1.0);
    }
}
