//! Execution precision tiers for brownout serving.
//!
//! The bit-serial pipeline's cost is linear in input conversion phases
//! (two polarity phases per live magnitude bit), so dropping low-order
//! input bits trades a bounded, exactly-accounted output error for
//! proportionally fewer plane sweeps. [`ExecPrecision`] names the three
//! operating points the serving stack steps between under overload;
//! every VMM entry point accepts one via its `*_at` variant and
//! [`crate::CrossbarArray::truncation_error_bound`] prices the worst
//! case of what each tier gives up.

/// How aggressively the analog pipeline truncates input activations.
///
/// Tiers are ordered by degradation depth: `Full < Eco < Brownout`
/// (so `min` of two tiers is the more precise one — the meet used when
/// a tenant's precision floor caps the fleet controller's tier).
///
/// Dropping `k` low bits truncates every input to
/// `sign(x) * ((|x| >> k) << k)`; the per-element truncation error of
/// the *input* is at most `2^k - 1`, and the induced output error is
/// bounded exactly by
/// [`crate::CrossbarArray::truncation_error_bound`]. `Full` is the
/// bit-identical golden path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize)]
#[serde(rename_all = "lowercase")]
pub enum ExecPrecision {
    /// All input magnitude bits stream: the bit-identical reference
    /// tier (zero error, full phase count).
    #[default]
    Full,
    /// Drops the 2 lowest input magnitude bits: a mild, bounded error
    /// for ~2/7 fewer conversion phases at 8-bit inputs.
    Eco,
    /// Drops the 4 lowest input magnitude bits: the deep-degradation
    /// tier overload control reaches for before shedding.
    Brownout,
}

impl ExecPrecision {
    /// Every tier, shallowest (most precise) first.
    pub const ALL: [ExecPrecision; 3] = [
        ExecPrecision::Full,
        ExecPrecision::Eco,
        ExecPrecision::Brownout,
    ];

    /// Low input magnitude bits this tier drops before streaming.
    pub fn dropped_bits(self) -> u32 {
        match self {
            ExecPrecision::Full => 0,
            ExecPrecision::Eco => 2,
            ExecPrecision::Brownout => 4,
        }
    }

    /// Stable lowercase label for reports, traces, and metrics.
    pub fn name(self) -> &'static str {
        match self {
            ExecPrecision::Full => "full",
            ExecPrecision::Eco => "eco",
            ExecPrecision::Brownout => "brownout",
        }
    }

    /// Index into [`ExecPrecision::ALL`] (doubles as the
    /// `red_precision_tier` gauge value: 0 = full, 2 = brownout).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses a [`ExecPrecision::name`] label.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// The next tier toward [`ExecPrecision::Brownout`] (saturating).
    pub fn deeper(self) -> Self {
        match self {
            ExecPrecision::Full => ExecPrecision::Eco,
            _ => ExecPrecision::Brownout,
        }
    }

    /// The next tier toward [`ExecPrecision::Full`] (saturating).
    pub fn shallower(self) -> Self {
        match self {
            ExecPrecision::Brownout => ExecPrecision::Eco,
            _ => ExecPrecision::Full,
        }
    }
}

impl std::fmt::Display for ExecPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_degradation_depth() {
        assert!(ExecPrecision::Full < ExecPrecision::Eco);
        assert!(ExecPrecision::Eco < ExecPrecision::Brownout);
        // A tenant floor caps the controller tier via `min`.
        assert_eq!(
            ExecPrecision::Brownout.min(ExecPrecision::Full),
            ExecPrecision::Full
        );
    }

    #[test]
    fn names_round_trip() {
        for p in ExecPrecision::ALL {
            assert_eq!(ExecPrecision::from_name(p.name()), Some(p));
        }
        assert_eq!(ExecPrecision::from_name("half"), None);
    }

    #[test]
    fn steps_saturate() {
        assert_eq!(ExecPrecision::Full.deeper(), ExecPrecision::Eco);
        assert_eq!(ExecPrecision::Eco.deeper(), ExecPrecision::Brownout);
        assert_eq!(ExecPrecision::Brownout.deeper(), ExecPrecision::Brownout);
        assert_eq!(ExecPrecision::Full.shallower(), ExecPrecision::Full);
        assert_eq!(ExecPrecision::Brownout.shallower(), ExecPrecision::Eco);
    }

    #[test]
    fn dropped_bits_monotone_in_depth() {
        assert_eq!(ExecPrecision::Full.dropped_bits(), 0);
        assert!(ExecPrecision::Eco.dropped_bits() < ExecPrecision::Brownout.dropped_bits());
        assert_eq!(ExecPrecision::default(), ExecPrecision::Full);
    }
}
