use red_device::variation::{FaultModel, VariationModel};
use red_device::CellConfig;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from crossbar programming and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum XbarError {
    /// A weight exceeds the representable range for the configured
    /// `weight_bits`.
    WeightOutOfRange {
        /// The offending weight value.
        value: i64,
        /// The symmetric bound `2^(weight_bits-1) - 1`.
        bound: i64,
    },
    /// The weight matrix is empty or ragged.
    BadWeightMatrix(String),
    /// An input vector length does not match the array row count.
    InputLengthMismatch {
        /// Rows in the array.
        rows: usize,
        /// Supplied input length.
        input: usize,
    },
    /// An input value exceeds the representable range for the configured
    /// `input_bits`.
    InputOutOfRange {
        /// The offending input value.
        value: i64,
        /// The symmetric bound `2^(input_bits-1) - 1`.
        bound: i64,
    },
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::WeightOutOfRange { value, bound } => {
                write!(f, "weight {value} outside representable range ±{bound}")
            }
            XbarError::BadWeightMatrix(msg) => write!(f, "bad weight matrix: {msg}"),
            XbarError::InputLengthMismatch { rows, input } => {
                write!(f, "input length {input} does not match {rows} rows")
            }
            XbarError::InputOutOfRange { value, bound } => {
                write!(f, "input {value} outside representable range ±{bound}")
            }
        }
    }
}

impl Error for XbarError {}

/// How signed multi-bit weights are encoded onto cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightScheme {
    /// Differential column pairs: `w = w⁺ - w⁻`, each magnitude bit-sliced
    /// across `ceil((weight_bits-1)/bits_per_cell)` cells. Doubles the
    /// physical column count but subtracts in the digital domain with no
    /// reference-current bookkeeping. This is the functional default.
    Differential,
    /// Offset binary: `w + 2^(weight_bits-1)` stored unsigned, with a dummy
    /// reference column per array whose weighted input sum is subtracted
    /// after conversion (ISAAC-style). Halves the column count relative to
    /// [`WeightScheme::Differential`] at the price of one extra column and
    /// wider ADC headroom.
    OffsetBinary,
}

/// The read-circuit conversion model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdcModel {
    /// Infinite-resolution conversion: the analog column sum is recovered
    /// exactly (after dummy-column baseline cancellation). Use for
    /// functional-equivalence verification.
    Ideal,
    /// Integrate-and-fire with `bits` of resolution: per-phase column sums
    /// clamp at `2^bits - 1` counts, exactly like a real spike counter
    /// running out of integration window.
    Saturating {
        /// Converter resolution in bits.
        bits: u32,
    },
}

impl AdcModel {
    /// Quantizes one baseline-cancelled, LSB-normalized column sum to an
    /// integer spike count: nearest-integer rounding for the ideal
    /// converter, additionally clamped to `[0, 2^bits - 1]` for the
    /// saturating one (the integrate-and-fire counter can neither count
    /// below zero nor past the end of its integration window).
    ///
    /// This is the single quantization point of the analog pipeline —
    /// every conversion phase of [`crate::CrossbarArray`] routes through
    /// it, so the ADC semantics live in exactly one place.
    pub fn quantize(&self, raw: f64) -> i64 {
        match self {
            AdcModel::Ideal => raw.round() as i64,
            AdcModel::Saturating { bits } => {
                let max = (1i64 << bits) - 1;
                (raw.round() as i64).clamp(0, max)
            }
        }
    }
}

/// Full functional configuration of a crossbar.
///
/// # Example
///
/// ```
/// use red_xbar::{AdcModel, XbarConfig};
///
/// let cfg = XbarConfig::ideal();
/// assert_eq!(cfg.adc, AdcModel::Ideal);
/// assert_eq!(cfg.magnitude_slices(), 4); // 7 magnitude bits on 2-bit cells
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XbarConfig {
    /// Device-level cell configuration.
    pub cell: CellConfig,
    /// Weight encoding scheme.
    pub scheme: WeightScheme,
    /// Read-circuit model.
    pub adc: AdcModel,
    /// Conductance variation model (ideal by default).
    pub variation: VariationModel,
    /// Stuck-at fault model (none by default).
    pub faults: FaultModel,
    /// Wire IR-drop model (ideal wires by default).
    pub ir_drop: crate::IrDropModel,
    /// Conductance retention drift (fresh by default).
    pub drift: red_device::DriftModel,
    /// Input precision in bits (signed, bit-serial streaming).
    pub input_bits: u32,
    /// Weight precision in bits (signed).
    pub weight_bits: u32,
}

impl XbarConfig {
    /// Ideal configuration: exact conversion, no variation, no faults,
    /// 8-bit inputs and weights on 2-bit cells.
    pub fn ideal() -> Self {
        Self {
            cell: CellConfig::default(),
            scheme: WeightScheme::Differential,
            adc: AdcModel::Ideal,
            variation: VariationModel::ideal(),
            faults: FaultModel::none(),
            ir_drop: crate::IrDropModel::ideal(),
            drift: red_device::DriftModel::fresh(),
            input_bits: 8,
            weight_bits: 8,
        }
    }

    /// A realistic configuration for accuracy studies: saturating 8-bit
    /// ADC, the given conductance variation sigma and fault rates.
    pub fn noisy(sigma: f64, p_stuck_off: f64, p_stuck_on: f64, seed: u64) -> Self {
        Self {
            adc: AdcModel::Saturating { bits: 8 },
            variation: VariationModel::with_sigma(sigma, seed),
            faults: FaultModel::with_rates(p_stuck_off, p_stuck_on, seed.wrapping_add(1)),
            ..Self::ideal()
        }
    }

    /// A named non-ideal preset for accuracy/perf studies, or `None` for
    /// an unknown name. Each preset switches exactly one device effect on
    /// (plus the `full` combination), so sweeps can attribute degradation
    /// — and the noisy serving benchmark can pick its scenario — by name:
    ///
    /// * `variation` — 2% log-normal conductance variation;
    /// * `adc` — 8-bit saturating integrate-and-fire conversion;
    /// * `ir-drop` — 2 Ω/cell wire resistance;
    /// * `full` — all of the above plus 0.1%/0.05% stuck-off/on faults
    ///   and 30 days of 2% retention drift.
    ///
    /// Presets are seeded deterministically so programmed arrays (and
    /// therefore benchmark rows) are reproducible across runs.
    pub fn preset(name: &str) -> Option<Self> {
        let base = Self::ideal();
        match name {
            "variation" => Some(Self {
                variation: VariationModel::with_sigma(0.02, 11),
                ..base
            }),
            "adc" => Some(Self {
                adc: AdcModel::Saturating { bits: 8 },
                ..base
            }),
            "ir-drop" => Some(Self {
                ir_drop: crate::IrDropModel::with_resistance(2.0),
                ..base
            }),
            "full" => Some(Self {
                adc: AdcModel::Saturating { bits: 8 },
                variation: VariationModel::with_sigma(0.02, 11),
                faults: FaultModel::with_rates(0.001, 0.0005, 12),
                ir_drop: crate::IrDropModel::with_resistance(2.0),
                drift: red_device::DriftModel::after(0.02, 30.0 * 86_400.0),
                ..base
            }),
            _ => None,
        }
    }

    /// Number of cells each signed weight's magnitude is sliced across:
    /// `ceil((weight_bits - 1) / bits_per_cell)`, at least 1.
    pub fn magnitude_slices(&self) -> usize {
        let mag_bits = self.weight_bits.saturating_sub(1).max(1);
        mag_bits.div_ceil(self.cell.bits_per_cell) as usize
    }

    /// Cells per stored (unsigned) value under the active scheme:
    /// magnitude slices for differential pairs, `ceil(weight_bits /
    /// bits_per_cell)` for offset binary (the offset adds one bit of
    /// unsigned range).
    pub fn slices(&self) -> usize {
        match self.scheme {
            WeightScheme::Differential => self.magnitude_slices(),
            WeightScheme::OffsetBinary => {
                self.weight_bits.div_ceil(self.cell.bits_per_cell) as usize
            }
        }
    }

    /// Physical columns per logical weight column, including the encoding
    /// overhead (2× for differential pairs; offset binary's shared
    /// reference column is amortised and counted separately).
    pub fn phys_cols_per_weight(&self) -> usize {
        match self.scheme {
            WeightScheme::Differential => 2 * self.slices(),
            WeightScheme::OffsetBinary => self.slices(),
        }
    }

    /// Symmetric weight bound `2^(weight_bits-1) - 1`.
    pub fn weight_bound(&self) -> i64 {
        (1i64 << (self.weight_bits - 1)) - 1
    }

    /// Symmetric input bound `2^(input_bits-1) - 1`.
    pub fn input_bound(&self) -> i64 {
        (1i64 << (self.input_bits - 1)) - 1
    }
}

impl Default for XbarConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_defaults() {
        let c = XbarConfig::ideal();
        assert_eq!(c.weight_bound(), 127);
        assert_eq!(c.input_bound(), 127);
        assert_eq!(c.magnitude_slices(), 4);
        assert_eq!(c.phys_cols_per_weight(), 8); // differential doubles
    }

    #[test]
    fn offset_binary_halves_columns() {
        let c = XbarConfig {
            scheme: WeightScheme::OffsetBinary,
            ..XbarConfig::ideal()
        };
        assert_eq!(c.phys_cols_per_weight(), 4);
    }

    #[test]
    fn slices_track_cell_bits() {
        let mut c = XbarConfig::ideal();
        c.cell.bits_per_cell = 1;
        assert_eq!(c.magnitude_slices(), 7);
        c.cell.bits_per_cell = 4;
        assert_eq!(c.magnitude_slices(), 2);
        c.weight_bits = 2;
        assert_eq!(c.magnitude_slices(), 1);
    }

    #[test]
    fn ideal_adc_rounds_to_nearest() {
        let adc = AdcModel::Ideal;
        assert_eq!(adc.quantize(0.0), 0);
        assert_eq!(adc.quantize(2.4), 2);
        assert_eq!(adc.quantize(2.5), 3); // round-half-away-from-zero
        assert_eq!(adc.quantize(-3.6), -4);
        assert_eq!(adc.quantize(1e6 + 0.49), 1_000_000);
    }

    #[test]
    fn saturating_adc_clamps_to_code_range() {
        let adc = AdcModel::Saturating { bits: 3 };
        assert_eq!(adc.quantize(-0.4), 0); // rounds to 0, not clamped
        assert_eq!(adc.quantize(-5.0), 0); // clamped at the bottom
        assert_eq!(adc.quantize(3.2), 3); // in-range passes through
        assert_eq!(adc.quantize(6.6), 7); // rounds up to full scale
        assert_eq!(adc.quantize(7.4), 7); // full scale
        assert_eq!(adc.quantize(250.0), 7); // clamped at 2^bits - 1
        let wide = AdcModel::Saturating { bits: 8 };
        assert_eq!(wide.quantize(250.0), 250);
        assert_eq!(wide.quantize(256.0), 255);
    }

    #[test]
    fn presets_enable_exactly_their_effect() {
        let v = XbarConfig::preset("variation").unwrap();
        assert!(!v.variation.is_ideal());
        assert_eq!(v.adc, AdcModel::Ideal);
        assert!(v.ir_drop.is_ideal());

        let a = XbarConfig::preset("adc").unwrap();
        assert!(matches!(a.adc, AdcModel::Saturating { bits: 8 }));
        assert!(a.variation.is_ideal());

        let w = XbarConfig::preset("ir-drop").unwrap();
        assert!(!w.ir_drop.is_ideal());
        assert!(w.variation.is_ideal());

        let f = XbarConfig::preset("full").unwrap();
        assert!(!f.variation.is_ideal());
        assert!(!f.faults.is_none());
        assert!(!f.ir_drop.is_ideal());
        assert!(!f.drift.is_fresh());

        assert!(XbarConfig::preset("nope").is_none());
    }

    #[test]
    fn noisy_config_enables_nonidealities() {
        let c = XbarConfig::noisy(0.1, 0.01, 0.001, 7);
        assert!(!c.variation.is_ideal());
        assert!(!c.faults.is_none());
        assert!(matches!(c.adc, AdcModel::Saturating { bits: 8 }));
    }
}
