//! Partitioning logical weight matrices into bounded physical tiles.
//!
//! The paper's model treats each design's arrays at their logical size (the
//! breakdown only needs relative scaling), but real ReRAM macros cap out
//! around 128–1024 wordlines/bitlines. This module computes the tile grid a
//! logical array decomposes into, used by the cost model's optional
//! "physical tiling" mode and the corresponding ablation bench.

use serde::{Deserialize, Serialize};

/// A tiling of a `rows x cols` logical array into physical tiles of at most
/// `max_rows x max_cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileGrid {
    /// Logical row count.
    pub rows: usize,
    /// Logical column count.
    pub cols: usize,
    /// Tile bound on rows.
    pub max_rows: usize,
    /// Tile bound on columns.
    pub max_cols: usize,
}

impl TileGrid {
    /// Plans a tiling.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn plan(rows: usize, cols: usize, max_rows: usize, max_cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0 && max_rows > 0 && max_cols > 0,
            "tile dimensions must be positive"
        );
        Self {
            rows,
            cols,
            max_rows,
            max_cols,
        }
    }

    /// Tiles along the row axis, `ceil(rows / max_rows)`.
    pub fn row_tiles(&self) -> usize {
        self.rows.div_ceil(self.max_rows)
    }

    /// Tiles along the column axis, `ceil(cols / max_cols)`.
    pub fn col_tiles(&self) -> usize {
        self.cols.div_ceil(self.max_cols)
    }

    /// Total physical tiles.
    pub fn tiles(&self) -> usize {
        self.row_tiles() * self.col_tiles()
    }

    /// Dimensions of the tile at grid position `(tr, tc)` (edge tiles may
    /// be smaller).
    ///
    /// # Panics
    ///
    /// Panics if the grid position is out of range.
    pub fn tile_dims(&self, tr: usize, tc: usize) -> (usize, usize) {
        assert!(
            tr < self.row_tiles() && tc < self.col_tiles(),
            "tile position out of range"
        );
        let r = if tr + 1 == self.row_tiles() && !self.rows.is_multiple_of(self.max_rows) {
            self.rows % self.max_rows
        } else {
            self.max_rows.min(self.rows)
        };
        let c = if tc + 1 == self.col_tiles() && !self.cols.is_multiple_of(self.max_cols) {
            self.cols % self.max_cols
        } else {
            self.max_cols.min(self.cols)
        };
        (r, c)
    }

    /// Iterates all tile positions with their dimensions.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        (0..self.row_tiles()).flat_map(move |tr| {
            (0..self.col_tiles()).map(move |tc| {
                let (r, c) = self.tile_dims(tr, tc);
                (tr, tc, r, c)
            })
        })
    }

    /// Total cell slots across all tiles (≥ `rows * cols`; the excess is
    /// edge-tile fragmentation, which real floorplans pay for).
    pub fn allocated_cells(&self) -> usize {
        // Edge tiles are not padded in this model, so allocation is exact.
        self.iter().map(|(_, _, r, c)| r * c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let g = TileGrid::plan(512, 512, 128, 128);
        assert_eq!(g.row_tiles(), 4);
        assert_eq!(g.col_tiles(), 4);
        assert_eq!(g.tiles(), 16);
        assert_eq!(g.tile_dims(3, 3), (128, 128));
        assert_eq!(g.allocated_cells(), 512 * 512);
    }

    #[test]
    fn ragged_edges() {
        let g = TileGrid::plan(300, 130, 128, 128);
        assert_eq!(g.row_tiles(), 3);
        assert_eq!(g.col_tiles(), 2);
        assert_eq!(g.tile_dims(2, 1), (44, 2));
        assert_eq!(g.tile_dims(0, 0), (128, 128));
        assert_eq!(g.allocated_cells(), 300 * 130);
    }

    #[test]
    fn smaller_than_tile() {
        let g = TileGrid::plan(21, 84, 128, 128);
        assert_eq!(g.tiles(), 1);
        assert_eq!(g.tile_dims(0, 0), (21, 84));
    }

    #[test]
    fn iter_covers_all_tiles() {
        let g = TileGrid::plan(100, 100, 30, 40);
        let v: Vec<_> = g.iter().collect();
        assert_eq!(v.len(), g.tiles());
        assert_eq!(v.len(), 4 * 3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_panics() {
        let _ = TileGrid::plan(0, 10, 128, 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_tile_position_panics() {
        let g = TileGrid::plan(10, 10, 128, 128);
        let _ = g.tile_dims(1, 0);
    }
}
