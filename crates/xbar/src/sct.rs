use crate::{CrossbarArray, ExecPrecision, VmmScratch, XbarConfig, XbarError};
use red_tensor::Kernel;

/// Reusable working memory for repeated [`SubCrossbarTensor::eval_tap_into`]
/// calls: the zero-filled `2C` input staging buffer the halved layout
/// drives its pair arrays with, plus the analog-path [`VmmScratch`]. Built
/// once per execution context and reused for every tap of every output
/// pixel, so steady-state evaluation performs no per-tap heap allocation.
#[derive(Debug, Clone, Default)]
pub struct TapScratch {
    padded: Vec<i64>,
    vmm: VmmScratch,
}

impl TapScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Physical arrangement of the sub-crossbar tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SctLayout {
    /// Paper Eq. 1: `KH·KW` sub-crossbars of shape `C × M`; every kernel
    /// tap owns one sub-crossbar and all taps can fire each cycle.
    Full,
    /// Paper Eq. 2 (area-efficient design): `ceil(KH·KW / 2)` sub-crossbars
    /// of shape `2C × M`; taps `2n` and `2n+1` share sub-crossbar `n` and
    /// fire in alternate cycles with the unused half of the input vector
    /// zero-filled. Halves the output-periphery instance count at the cost
    /// of doubling the cycle count.
    Halved,
}

/// RED's pixel-wise mapping (paper Eq. 1): the deconvolution kernel split
/// across per-tap sub-crossbars.
///
/// `SCT[c, m, i·KW + j] = W[i, j, c, m]` — sub-crossbar `i·KW + j` is the
/// `C × M` weight matrix of kernel tap `(i, j)`. The zero-skipping data
/// flow then drives each sub-crossbar with (only) real input pixels and
/// merges per-mode groups of sub-crossbar outputs into output pixels.
///
/// # Example
///
/// ```
/// use red_tensor::Kernel;
/// use red_xbar::{SctLayout, SubCrossbarTensor, XbarConfig};
///
/// # fn main() -> Result<(), red_xbar::XbarError> {
/// let kernel = Kernel::<i64>::from_fn(3, 3, 4, 2, |i, j, c, m| {
///     (i as i64) * 20 + (j as i64) * 5 + (c as i64) - (m as i64)
/// });
/// let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &kernel, SctLayout::Full)?;
/// assert_eq!(sct.sub_crossbars(), 9);
/// // Eq. 1: sub-crossbar (i*KW + j) holds W[i, j, ., .].
/// assert_eq!(sct.array(3 * 1 + 2).weight(1, 0), kernel[(1, 2, 1, 0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SubCrossbarTensor {
    layout: SctLayout,
    kernel_h: usize,
    kernel_w: usize,
    channels: usize,
    filters: usize,
    arrays: Vec<CrossbarArray>,
}

impl SubCrossbarTensor {
    /// Maps a kernel onto sub-crossbars per Eq. 1 (or the Eq. 2 halved
    /// arrangement).
    ///
    /// # Errors
    ///
    /// Propagates [`XbarError`] from array programming (weight range
    /// violations).
    pub fn map(
        cfg: &XbarConfig,
        kernel: &Kernel<i64>,
        layout: SctLayout,
    ) -> Result<Self, XbarError> {
        let (kh, kw) = (kernel.kernel_h(), kernel.kernel_w());
        let (c, m) = (kernel.channels(), kernel.filters());
        let taps = kh * kw;
        let mut arrays = Vec::new();
        match layout {
            SctLayout::Full => {
                for i in 0..kh {
                    for j in 0..kw {
                        let mut flat = Vec::with_capacity(c * m);
                        for ch in 0..c {
                            flat.extend_from_slice(kernel.row(i, j, ch));
                        }
                        arrays.push(CrossbarArray::program_flat(cfg, c, m, flat)?);
                    }
                }
            }
            SctLayout::Halved => {
                let pairs = taps.div_ceil(2);
                for n in 0..pairs {
                    // Rows 0..C hold tap 2n, rows C..2C hold tap 2n+1
                    // (zero rows when 2n+1 falls off an odd tap count).
                    let mut flat = Vec::with_capacity(2 * c * m);
                    for half in 0..2 {
                        let t = 2 * n + half;
                        if t < taps {
                            let (i, j) = (t / kw, t % kw);
                            for ch in 0..c {
                                flat.extend_from_slice(kernel.row(i, j, ch));
                            }
                        } else {
                            flat.extend(std::iter::repeat_n(0, c * m));
                        }
                    }
                    arrays.push(CrossbarArray::program_flat(cfg, 2 * c, m, flat)?);
                }
            }
        }
        Ok(Self {
            layout,
            kernel_h: kh,
            kernel_w: kw,
            channels: c,
            filters: m,
            arrays,
        })
    }

    /// The linear sub-crossbar index of tap `(i, j)`: `i·KW + j` (Eq. 1).
    pub fn sc_index(i: usize, j: usize, kernel_w: usize) -> usize {
        i * kernel_w + j
    }

    /// Number of physical sub-crossbar arrays.
    pub fn sub_crossbars(&self) -> usize {
        self.arrays.len()
    }

    /// Rows per array: `C` for the full layout, `2C` for the halved one.
    pub fn rows_per_array(&self) -> usize {
        match self.layout {
            SctLayout::Full => self.channels,
            SctLayout::Halved => 2 * self.channels,
        }
    }

    /// The layout this SCT was mapped with.
    pub fn layout(&self) -> SctLayout {
        self.layout
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// Input channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Filters `M`.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Cycles needed to evaluate all taps once: 1 for the full layout, 2
    /// for the halved one (Eq. 2's two-cycle schedule).
    pub fn cycles_per_batch(&self) -> usize {
        match self.layout {
            SctLayout::Full => 1,
            SctLayout::Halved => 2,
        }
    }

    /// Borrow a sub-crossbar array by linear index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= sub_crossbars()`.
    pub fn array(&self, index: usize) -> &CrossbarArray {
        &self.arrays[index]
    }

    /// Evaluates kernel tap `(i, j)` for one input pixel vector (length
    /// `C`), returning the `M` partial sums.
    ///
    /// For the halved layout this builds Eq. 2's zero-filled `2C` input
    /// vector and drives the shared pair array, exactly as the two-cycle
    /// hardware schedule would.
    ///
    /// # Panics
    ///
    /// Panics if the tap is out of range or `input.len() != C`.
    pub fn eval_tap(&self, i: usize, j: usize, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.filters];
        self.eval_tap_into(i, j, input, &mut TapScratch::new(), &mut out);
        out
    }

    /// Allocation-free [`SubCrossbarTensor::eval_tap`]: writes the `M`
    /// partial sums into `out`, staging the halved layout's zero-filled
    /// `2C` vector in `scratch` instead of allocating it per call.
    ///
    /// # Panics
    ///
    /// Panics if the tap is out of range, `input.len() != C`, or
    /// `out.len() != M`.
    pub fn eval_tap_into(
        &self,
        i: usize,
        j: usize,
        input: &[i64],
        scratch: &mut TapScratch,
        out: &mut [i64],
    ) {
        self.eval_tap_into_at(i, j, input, scratch, out, ExecPrecision::Full);
    }

    /// [`SubCrossbarTensor::eval_tap_into`] at an explicit precision
    /// tier, forwarded to the tap array's
    /// [`CrossbarArray::vmm_into_at`]. `Full` is bit-identical to the
    /// unsuffixed path.
    ///
    /// # Panics
    ///
    /// Panics if the tap is out of range, `input.len() != C`, or
    /// `out.len() != M`.
    pub fn eval_tap_into_at(
        &self,
        i: usize,
        j: usize,
        input: &[i64],
        scratch: &mut TapScratch,
        out: &mut [i64],
        prec: ExecPrecision,
    ) {
        assert!(i < self.kernel_h && j < self.kernel_w, "tap out of range");
        assert_eq!(input.len(), self.channels, "input must have C entries");
        let t = Self::sc_index(i, j, self.kernel_w);
        match self.layout {
            SctLayout::Full => self.arrays[t].vmm_into_at(input, &mut scratch.vmm, out, prec),
            SctLayout::Halved => {
                let n = t / 2;
                scratch.padded.clear();
                scratch.padded.resize(2 * self.channels, 0);
                let start = (t % 2) * self.channels;
                scratch.padded[start..start + self.channels].copy_from_slice(input);
                self.arrays[n].vmm_into_at(&scratch.padded, &mut scratch.vmm, out, prec);
            }
        }
    }

    /// `true` when batched tap evaluation
    /// ([`SubCrossbarTensor::eval_tap_batch_into`]) actually reuses
    /// weight/plane blocks across the batch — every sub-crossbar shares
    /// the same geometry and configuration, so the first array decides
    /// ([`CrossbarArray::vmm_batch_pays`]). Engines consult this before
    /// gathering tap inputs pixel-major across a whole batch.
    pub fn batch_pays(&self) -> bool {
        self.arrays
            .first()
            .is_some_and(CrossbarArray::vmm_batch_pays)
    }

    /// Batched [`SubCrossbarTensor::eval_tap_into`]: evaluates kernel tap
    /// `(i, j)` for `n` input pixel vectors flattened row-major into
    /// `inputs` (`n × C`), writing `n × M` partial sums into `out`.
    ///
    /// Routes through [`CrossbarArray::vmm_batch`], so the tap's weight
    /// matrix (exact path) or effective-current plane (analog path)
    /// streams across the whole batch in blocks when that pays; results
    /// are bit-identical to `n` single-pixel calls either way. For the
    /// halved layout the `n` zero-filled `2C` staging vectors live in
    /// `scratch`, exactly like the single-pixel path's.
    ///
    /// # Panics
    ///
    /// Panics if the tap is out of range, `inputs.len() != n * C`, or
    /// `out.len() != n * M`.
    pub fn eval_tap_batch_into(
        &self,
        i: usize,
        j: usize,
        inputs: &[i64],
        n: usize,
        scratch: &mut TapScratch,
        out: &mut [i64],
    ) {
        self.eval_tap_batch_into_at(i, j, inputs, n, scratch, out, ExecPrecision::Full);
    }

    /// [`SubCrossbarTensor::eval_tap_batch_into`] at an explicit
    /// precision tier, forwarded to the tap array's
    /// [`CrossbarArray::vmm_batch_at`]. `Full` is bit-identical to the
    /// unsuffixed path.
    ///
    /// # Panics
    ///
    /// Panics if the tap is out of range, `inputs.len() != n * C`, or
    /// `out.len() != n * M`.
    #[allow(clippy::too_many_arguments)] // mirrors eval_tap_batch_into + tier
    pub fn eval_tap_batch_into_at(
        &self,
        i: usize,
        j: usize,
        inputs: &[i64],
        n: usize,
        scratch: &mut TapScratch,
        out: &mut [i64],
        prec: ExecPrecision,
    ) {
        assert!(i < self.kernel_h && j < self.kernel_w, "tap out of range");
        assert_eq!(inputs.len(), n * self.channels, "inputs must be n x C");
        assert_eq!(out.len(), n * self.filters, "out must be n x M");
        let t = Self::sc_index(i, j, self.kernel_w);
        match self.layout {
            SctLayout::Full => self.arrays[t].vmm_batch_at(inputs, n, &mut scratch.vmm, out, prec),
            SctLayout::Halved => {
                let rows = 2 * self.channels;
                scratch.padded.clear();
                scratch.padded.resize(n * rows, 0);
                let start = (t % 2) * self.channels;
                for (k, px) in inputs.chunks_exact(self.channels).enumerate() {
                    scratch.padded[k * rows + start..k * rows + start + self.channels]
                        .copy_from_slice(px);
                }
                self.arrays[t / 2].vmm_batch_at(&scratch.padded, n, &mut scratch.vmm, out, prec);
            }
        }
    }

    /// Worst-case elementwise partial-sum error of evaluating taps at
    /// `prec` instead of [`ExecPrecision::Full`]: the max of
    /// [`CrossbarArray::truncation_error_bound`] across the
    /// sub-crossbars.
    pub fn truncation_error_bound(&self, prec: ExecPrecision) -> f64 {
        self.arrays
            .iter()
            .map(|a| a.truncation_error_bound(prec))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(kh: usize, kw: usize, c: usize, m: usize) -> Kernel<i64> {
        Kernel::from_fn(kh, kw, c, m, |i, j, cc, mm| {
            ((i * 53 + j * 19 + cc * 7 + mm * 3) % 250) as i64 - 125
        })
    }

    #[test]
    fn eq1_mapping_bijection_full() {
        let k = kernel(3, 3, 5, 4);
        let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &k, SctLayout::Full).unwrap();
        assert_eq!(sct.sub_crossbars(), 9);
        for i in 0..3 {
            for j in 0..3 {
                let a = sct.array(SubCrossbarTensor::sc_index(i, j, 3));
                assert_eq!(a.rows(), 5);
                assert_eq!(a.weight_cols(), 4);
                for c in 0..5 {
                    for m in 0..4 {
                        assert_eq!(a.weight(c, m), k[(i, j, c, m)], "SCT[{c},{m},{i}*KW+{j}]");
                    }
                }
            }
        }
    }

    #[test]
    fn halved_layout_pairs_taps() {
        let k = kernel(4, 4, 3, 2);
        let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &k, SctLayout::Halved).unwrap();
        assert_eq!(sct.sub_crossbars(), 8); // 16 taps / 2
        assert_eq!(sct.rows_per_array(), 6); // 2C
        assert_eq!(sct.cycles_per_batch(), 2);
        // Tap 5 = (1,1) lives in array 2, upper half (rows C..2C).
        let a = sct.array(2);
        for c in 0..3 {
            for m in 0..2 {
                assert_eq!(a.weight(c, m), k[(1, 0, c, m)]); // tap 4, lower half
                assert_eq!(a.weight(3 + c, m), k[(1, 1, c, m)]); // tap 5, upper half
            }
        }
    }

    #[test]
    fn halved_odd_tap_count_zero_fills() {
        let k = kernel(3, 3, 2, 2); // 9 taps -> 5 arrays, last half empty
        let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &k, SctLayout::Halved).unwrap();
        assert_eq!(sct.sub_crossbars(), 5);
        let last = sct.array(4);
        for c in 0..2 {
            for m in 0..2 {
                assert_eq!(last.weight(c, m), k[(2, 2, c, m)]); // tap 8
                assert_eq!(last.weight(2 + c, m), 0); // zero fill
            }
        }
    }

    #[test]
    fn eval_tap_equal_across_layouts() {
        let k = kernel(3, 3, 6, 4);
        let cfg = XbarConfig::ideal();
        let full = SubCrossbarTensor::map(&cfg, &k, SctLayout::Full).unwrap();
        let halved = SubCrossbarTensor::map(&cfg, &k, SctLayout::Halved).unwrap();
        let input: Vec<i64> = (0..6).map(|i| (i as i64) * 9 - 20).collect();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    full.eval_tap(i, j, &input),
                    halved.eval_tap(i, j, &input),
                    "tap ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn eval_tap_matches_direct_mac() {
        let k = kernel(2, 2, 4, 3);
        let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &k, SctLayout::Full).unwrap();
        let input = vec![3i64, -1, 0, 7];
        let out = sct.eval_tap(1, 0, &input);
        for m in 0..3 {
            let expect: i64 = (0..4).map(|c| input[c] * k[(1, 0, c, m)]).sum();
            assert_eq!(out[m], expect);
        }
    }

    #[test]
    fn geometry_accessors() {
        let k = kernel(5, 4, 3, 2);
        let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &k, SctLayout::Full).unwrap();
        assert_eq!(sct.kernel_h(), 5);
        assert_eq!(sct.kernel_w(), 4);
        assert_eq!(sct.channels(), 3);
        assert_eq!(sct.filters(), 2);
        assert_eq!(sct.layout(), SctLayout::Full);
        assert_eq!(sct.cycles_per_batch(), 1);
        assert_eq!(sct.rows_per_array(), 3);
    }

    #[test]
    fn eval_tap_into_matches_allocating_path_with_shared_scratch() {
        let k = kernel(3, 3, 5, 4);
        for layout in [SctLayout::Full, SctLayout::Halved] {
            let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &k, layout).unwrap();
            let mut scratch = TapScratch::new();
            let mut out = vec![0i64; 4];
            for i in 0..3 {
                for j in 0..3 {
                    let input: Vec<i64> = (0..5)
                        .map(|c| (c as i64) * 7 - 12 + (i + j) as i64)
                        .collect();
                    sct.eval_tap_into(i, j, &input, &mut scratch, &mut out);
                    assert_eq!(out, sct.eval_tap(i, j, &input), "tap ({i},{j}) {layout:?}");
                }
            }
        }
    }

    #[test]
    fn eval_tap_batch_matches_per_pixel_both_layouts() {
        let k = kernel(3, 3, 5, 4);
        for cfg in [XbarConfig::ideal(), XbarConfig::noisy(0.02, 0.001, 0.0, 31)] {
            for layout in [SctLayout::Full, SctLayout::Halved] {
                let sct = SubCrossbarTensor::map(&cfg, &k, layout).unwrap();
                let n = 3;
                let inputs: Vec<i64> = (0..n * 5).map(|i| ((i * 11) % 100) as i64 - 50).collect();
                let mut scratch = TapScratch::new();
                let mut out = vec![0i64; n * 4];
                for i in 0..3 {
                    for j in 0..3 {
                        sct.eval_tap_batch_into(i, j, &inputs, n, &mut scratch, &mut out);
                        for (kk, px) in inputs.chunks_exact(5).enumerate() {
                            assert_eq!(
                                &out[kk * 4..(kk + 1) * 4],
                                sct.eval_tap(i, j, px),
                                "tap ({i},{j}) input {kk} {layout:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "tap out of range")]
    fn bad_tap_panics() {
        let k = kernel(2, 2, 2, 2);
        let sct = SubCrossbarTensor::map(&XbarConfig::ideal(), &k, SctLayout::Full).unwrap();
        let _ = sct.eval_tap(2, 0, &[1, 2]);
    }
}
