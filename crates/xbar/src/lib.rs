//! # red-xbar
//!
//! Functional ReRAM crossbar simulation for the RED accelerator
//! reproduction.
//!
//! Where `red-circuit` *prices* crossbar operations, this crate *executes*
//! them: weights are bit-sliced onto multi-level cells, input vectors are
//! streamed bit-serially, column currents are summed in the analog domain,
//! converted by an integrate-and-fire read circuit, and recombined by the
//! shift-adder — reproducing the full Fig. 1(a) pipeline numerically.
//!
//! Key types:
//!
//! * [`XbarConfig`] — device + conversion configuration (cell, weight
//!   encoding, ADC model, variation/faults);
//! * [`CrossbarArray`] — one programmed array: exact digital reference
//!   ([`CrossbarArray::vmm_exact`]) and analog-path simulation
//!   ([`CrossbarArray::vmm`]);
//! * [`SubCrossbarTensor`] — RED's pixel-wise mapping (paper Eq. 1): the
//!   kernel split into `KH·KW` sub-crossbars of shape `C × M`, plus the
//!   area-efficient halved arrangement (paper Eq. 2);
//! * [`tiling`] — partitioning logical arrays into bounded physical tiles.
//!
//! With an ideal ADC and no variation, the analog path is bit-exact with
//! the digital reference (property-tested); with a saturating ADC,
//! conductance variation or stuck-at faults it degrades the way real
//! arrays do, which the fault-injection tests quantify.
//!
//! # Example
//!
//! ```
//! use red_xbar::{CrossbarArray, XbarConfig};
//!
//! # fn main() -> Result<(), red_xbar::XbarError> {
//! let cfg = XbarConfig::ideal();
//! // 3 rows (channels) x 2 weight columns (filters).
//! let weights = vec![vec![5, -3], vec![0, 7], vec![-2, 1]];
//! let array = CrossbarArray::program(&cfg, &weights)?;
//! let out = array.vmm(&[1, 2, -1]);
//! assert_eq!(out, vec![1 * 5 + 2 * 0 + -1 * -2, 1 * -3 + 2 * 7 + -1 * 1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod config;
mod ir_drop;
mod precision;
mod sct;
pub mod tiling;

pub use array::{CrossbarArray, VmmScratch};
pub use config::{AdcModel, WeightScheme, XbarConfig, XbarError};
pub use ir_drop::IrDropModel;
pub use precision::ExecPrecision;
pub use sct::{SctLayout, SubCrossbarTensor, TapScratch};
