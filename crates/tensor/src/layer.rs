//! Deconvolution layer geometry: input shape + kernel shape + hyper-params.

use crate::{DeconvSpec, OutputGeometry, ShapeError};
use serde::{Deserialize, Serialize};

/// The complete geometry of one deconvolution layer — everything the cost
/// model and the engines need to know about a workload besides the actual
/// tensor values (paper Table I rows are exactly this).
///
/// # Example
///
/// ```
/// use red_tensor::LayerShape;
///
/// # fn main() -> Result<(), red_tensor::TensorError> {
/// // GAN_Deconv3 (SNGAN / Cifar-10): (4,4,512) -> (8,8,256), 4x4 kernel, stride 2.
/// let layer = LayerShape::new(4, 4, 512, 256, 4, 4, 2, 1)?;
/// assert_eq!(layer.output_geometry().height, 8);
/// assert_eq!(layer.macs(), 8 * 8 * 4 * 4 * 512 * 256 / 4); // dense deconv MACs
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerShape {
    input_h: usize,
    input_w: usize,
    channels: usize,
    filters: usize,
    spec: DeconvSpec,
}

impl LayerShape {
    /// Creates a layer shape without output padding.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] for zero dimensions or invalid hyper-params.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        input_h: usize,
        input_w: usize,
        channels: usize,
        filters: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, ShapeError> {
        let spec = DeconvSpec::new(kernel_h, kernel_w, stride, padding)?;
        Self::with_spec(input_h, input_w, channels, filters, spec)
    }

    /// Creates a layer shape from an existing [`DeconvSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDimension`] for zero extents/channels.
    pub fn with_spec(
        input_h: usize,
        input_w: usize,
        channels: usize,
        filters: usize,
        spec: DeconvSpec,
    ) -> Result<Self, ShapeError> {
        if input_h == 0 {
            return Err(ShapeError::ZeroDimension("input_h"));
        }
        if input_w == 0 {
            return Err(ShapeError::ZeroDimension("input_w"));
        }
        if channels == 0 {
            return Err(ShapeError::ZeroDimension("channels"));
        }
        if filters == 0 {
            return Err(ShapeError::ZeroDimension("filters"));
        }
        if !spec.output_nonempty(input_h) {
            return Err(ShapeError::EmptyOutput { input: input_h });
        }
        if !spec.output_nonempty(input_w) {
            return Err(ShapeError::EmptyOutput { input: input_w });
        }
        Ok(Self {
            input_h,
            input_w,
            channels,
            filters,
            spec,
        })
    }

    /// Input feature-map height `IH`.
    pub fn input_h(&self) -> usize {
        self.input_h
    }

    /// Input feature-map width `IW`.
    pub fn input_w(&self) -> usize {
        self.input_w
    }

    /// Input channel count `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Output feature-map (filter) count `M`.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// The deconvolution hyper-parameters.
    pub fn spec(&self) -> &DeconvSpec {
        &self.spec
    }

    /// Output geometry of this layer.
    pub fn output_geometry(&self) -> OutputGeometry {
        self.spec.output_geometry(self.input_h, self.input_w)
    }

    /// Kernel taps `KH·KW`.
    pub fn taps(&self) -> usize {
        self.spec.taps()
    }

    /// Weight element count `KH·KW·C·M`.
    pub fn weights(&self) -> usize {
        self.taps() * self.channels * self.filters
    }

    /// True multiply-accumulate count of the deconvolution (each
    /// (input pixel, kernel tap, channel, filter) tuple once):
    /// `IH·IW·KH·KW·C·M`.
    pub fn macs(&self) -> u128 {
        self.input_h as u128
            * self.input_w as u128
            * self.taps() as u128
            * self.channels as u128
            * self.filters as u128
    }

    /// A proportionally scaled-down copy (channels and filters divided by
    /// `factor`, minimum 1) — used by tests to run Table I layers at
    /// tractable functional-simulation sizes while keeping the spatial
    /// geometry exact.
    pub fn scaled_channels(&self, factor: usize) -> Self {
        Self {
            channels: (self.channels / factor.max(1)).max(1),
            filters: (self.filters / factor.max(1)).max(1),
            ..*self
        }
    }
}

/// Geometry of a *standard convolution* layer (forward operator), used by
/// the conv support of the architecture crate: `OH = (IH + 2p - KH)/s + 1`.
///
/// # Example
///
/// ```
/// use red_tensor::ConvLayerShape;
///
/// # fn main() -> Result<(), red_tensor::ShapeError> {
/// // A "same" 3x3 conv over 32x32x64.
/// let l = ConvLayerShape::new(32, 32, 64, 128, 3, 3, 1, 1)?;
/// assert_eq!(l.output_extent(), (32, 32));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayerShape {
    input_h: usize,
    input_w: usize,
    channels: usize,
    filters: usize,
    kernel_h: usize,
    kernel_w: usize,
    stride: usize,
    padding: usize,
}

impl ConvLayerShape {
    /// Creates a conv layer shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] for zero dimensions or a padded input
    /// smaller than the kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        input_h: usize,
        input_w: usize,
        channels: usize,
        filters: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, ShapeError> {
        for (name, v) in [
            ("input_h", input_h),
            ("input_w", input_w),
            ("channels", channels),
            ("filters", filters),
            ("kernel_h", kernel_h),
            ("kernel_w", kernel_w),
            ("stride", stride),
        ] {
            if v == 0 {
                return Err(ShapeError::ZeroDimension(name));
            }
        }
        if input_h + 2 * padding < kernel_h || input_w + 2 * padding < kernel_w {
            return Err(ShapeError::IndexOutOfBounds {
                axis: "kernel larger than padded input",
                index: kernel_h.max(kernel_w),
                len: input_h + 2 * padding,
            });
        }
        Ok(Self {
            input_h,
            input_w,
            channels,
            filters,
            kernel_h,
            kernel_w,
            stride,
            padding,
        })
    }

    /// Input height.
    pub fn input_h(&self) -> usize {
        self.input_h
    }

    /// Input width.
    pub fn input_w(&self) -> usize {
        self.input_w
    }

    /// Input channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Filters `M`.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Kernel taps `KH·KW`.
    pub fn taps(&self) -> usize {
        self.kernel_h * self.kernel_w
    }

    /// Output extents `(OH, OW)`.
    pub fn output_extent(&self) -> (usize, usize) {
        (
            (self.input_h + 2 * self.padding - self.kernel_h) / self.stride + 1,
            (self.input_w + 2 * self.padding - self.kernel_w) / self.stride + 1,
        )
    }

    /// Output pixels `OH·OW`.
    pub fn output_pixels(&self) -> usize {
        let (oh, ow) = self.output_extent();
        oh * ow
    }

    /// Dense MAC count `OH·OW·KH·KW·C·M`.
    pub fn macs(&self) -> u128 {
        self.output_pixels() as u128
            * self.taps() as u128
            * self.channels as u128
            * self.filters as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_derived_counts() {
        let l = LayerShape::new(8, 8, 512, 256, 5, 5, 2, 2).unwrap();
        assert_eq!(l.input_h(), 8);
        assert_eq!(l.channels(), 512);
        assert_eq!(l.taps(), 25);
        assert_eq!(l.weights(), 25 * 512 * 256);
        assert_eq!(l.macs(), 64 * 25 * 512 * 256);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(LayerShape::new(0, 4, 1, 1, 3, 3, 1, 0).is_err());
        assert!(LayerShape::new(4, 0, 1, 1, 3, 3, 1, 0).is_err());
        assert!(LayerShape::new(4, 4, 0, 1, 3, 3, 1, 0).is_err());
        assert!(LayerShape::new(4, 4, 1, 0, 3, 3, 1, 0).is_err());
    }

    #[test]
    fn conv_shape_output_math() {
        let l = ConvLayerShape::new(32, 32, 64, 128, 3, 3, 1, 1).unwrap();
        assert_eq!(l.output_extent(), (32, 32));
        assert_eq!(l.taps(), 9);
        assert_eq!(l.macs(), 32 * 32 * 9 * 64 * 128);
        let strided = ConvLayerShape::new(8, 8, 4, 4, 3, 3, 2, 1).unwrap();
        assert_eq!(strided.output_extent(), (4, 4));
        assert_eq!(strided.stride(), 2);
        assert_eq!(strided.padding(), 1);
    }

    #[test]
    fn conv_shape_rejects_bad_geometry() {
        assert!(ConvLayerShape::new(0, 4, 1, 1, 3, 3, 1, 0).is_err());
        assert!(ConvLayerShape::new(2, 2, 1, 1, 5, 5, 1, 0).is_err()); // kernel too big
        assert!(ConvLayerShape::new(2, 2, 1, 1, 5, 5, 1, 2).is_ok()); // padding rescues
        assert!(ConvLayerShape::new(4, 4, 1, 1, 3, 3, 0, 0).is_err()); // zero stride
    }

    #[test]
    fn scaling_preserves_spatial_geometry() {
        let l = LayerShape::new(8, 8, 512, 256, 5, 5, 2, 2).unwrap();
        let s = l.scaled_channels(64);
        assert_eq!(s.channels(), 8);
        assert_eq!(s.filters(), 4);
        assert_eq!(s.output_geometry(), l.output_geometry());
        // Scaling below 1 clamps.
        let tiny = LayerShape::new(2, 2, 3, 3, 2, 2, 1, 0).unwrap();
        assert_eq!(tiny.scaled_channels(100).channels(), 1);
    }
}
