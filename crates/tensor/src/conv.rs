//! Plain convolution, as used by the zero-padding deconvolution algorithm.
//!
//! The zero-padding algorithm (paper Fig. 2, Algorithm 1) reduces a
//! deconvolution to: zero-insert + border-pad the input, then run a regular
//! **stride-1 valid** convolution. Only that flavour is needed here, but the
//! implementation also supports arbitrary stride since it is the natural
//! generalisation and useful for testing.

use crate::{FeatureMap, Kernel, Scalar, TensorError};

/// Valid (no implicit padding) cross-correlation of `input` with `kernel`.
///
/// Output channel `m` at `(u, v)` is
/// `sum_{i,j,c} input[u*s + i, v*s + j, c] * kernel[i, j, c, m]`.
///
/// Note this is *correlation* (no kernel flip); the zero-padding
/// deconvolution path flips the kernel explicitly via
/// [`Kernel::rotate_180`] before calling this, exactly as the paper's
/// Algorithm 1 composes the two steps.
///
/// # Errors
///
/// Returns [`TensorError::ChannelMismatch`] when channel counts differ and
/// [`TensorError::Shape`] when the kernel is larger than the input.
///
/// # Example
///
/// ```
/// use red_tensor::{FeatureMap, Kernel};
/// use red_tensor::conv::conv2d_valid;
///
/// # fn main() -> Result<(), red_tensor::TensorError> {
/// let input = FeatureMap::<i64>::from_fn(3, 3, 1, |h, w, _| (h * 3 + w) as i64);
/// let kernel = Kernel::<i64>::from_fn(2, 2, 1, 1, |_, _, _, _| 1);
/// let out = conv2d_valid(&input, &kernel, 1)?;
/// // 2x2 box filter over [[0,1,2],[3,4,5],[6,7,8]]
/// assert_eq!(out[(0, 0, 0)], 0 + 1 + 3 + 4);
/// assert_eq!(out[(1, 1, 0)], 4 + 5 + 7 + 8);
/// # Ok(())
/// # }
/// ```
pub fn conv2d_valid<T: Scalar>(
    input: &FeatureMap<T>,
    kernel: &Kernel<T>,
    stride: usize,
) -> Result<FeatureMap<T>, TensorError> {
    if input.channels() != kernel.channels() {
        return Err(TensorError::ChannelMismatch {
            input: input.channels(),
            kernel: kernel.channels(),
        });
    }
    if stride == 0 {
        return Err(crate::ShapeError::ZeroDimension("stride").into());
    }
    let (ih, iw) = (input.height(), input.width());
    let (kh, kw) = (kernel.kernel_h(), kernel.kernel_w());
    if kh > ih || kw > iw {
        return Err(crate::ShapeError::IndexOutOfBounds {
            axis: "kernel larger than input",
            index: kh.max(kw),
            len: ih.min(iw),
        }
        .into());
    }
    let oh = (ih - kh) / stride + 1;
    let ow = (iw - kw) / stride + 1;
    let (c_in, m_out) = (kernel.channels(), kernel.filters());

    let mut out = FeatureMap::<T>::zeros(oh, ow, m_out);
    for u in 0..oh {
        for v in 0..ow {
            let acc = out.pixel_mut(u, v);
            for i in 0..kh {
                for j in 0..kw {
                    let px = input.pixel(u * stride + i, v * stride + j);
                    for (c, &x) in px.iter().enumerate().take(c_in) {
                        if x.is_zero() {
                            continue;
                        }
                        let row = kernel.row(i, j, c);
                        for (m, &w) in row.iter().enumerate() {
                            acc[m] += x * w;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Standard zero-padded strided convolution (the forward operator the
/// deconvolution transposes): `OH = (IH + 2p - KH)/s + 1`.
///
/// This is the workload class the substrate accelerators (PRIME, ISAAC,
/// PipeLayer) were built for; the repository supports it so whole networks
/// — not just their deconvolution layers — can be mapped.
///
/// # Errors
///
/// Returns [`TensorError`] for channel mismatches, zero stride, or a
/// padded input smaller than the kernel.
///
/// # Example
///
/// ```
/// use red_tensor::{FeatureMap, Kernel};
/// use red_tensor::conv::conv2d;
///
/// # fn main() -> Result<(), red_tensor::TensorError> {
/// let input = FeatureMap::<i64>::from_fn(4, 4, 1, |h, w, _| (h * 4 + w) as i64);
/// let kernel = Kernel::<i64>::from_fn(3, 3, 1, 1, |_, _, _, _| 1);
/// // "same" conv: 4x4 stays 4x4 with padding 1.
/// let out = conv2d(&input, &kernel, 1, 1)?;
/// assert_eq!((out.height(), out.width()), (4, 4));
/// // Interior pixel (1,1) sums the full 3x3 neighbourhood.
/// assert_eq!(out[(1, 1, 0)], (0..=2).flat_map(|h| (0..=2).map(move |w| h * 4 + w)).sum::<usize>() as i64);
/// # Ok(())
/// # }
/// ```
pub fn conv2d<T: Scalar>(
    input: &FeatureMap<T>,
    kernel: &Kernel<T>,
    stride: usize,
    padding: usize,
) -> Result<FeatureMap<T>, TensorError> {
    if padding == 0 {
        return conv2d_valid(input, kernel, stride);
    }
    let (ih, iw, c) = (input.height(), input.width(), input.channels());
    let mut padded = FeatureMap::<T>::zeros(ih + 2 * padding, iw + 2 * padding, c);
    for h in 0..ih {
        for w in 0..iw {
            padded
                .pixel_mut(h + padding, w + padding)
                .copy_from_slice(input.pixel(h, w));
        }
    }
    conv2d_valid(&padded, kernel, stride)
}

/// Number of multiply-accumulate operations a dense valid convolution
/// performs, `OH*OW*KH*KW*C*M`. Used by the cost model for the
/// "total computation" denominator of redundancy ratios.
pub fn conv2d_macs(
    out_h: usize,
    out_w: usize,
    kernel_h: usize,
    kernel_w: usize,
    channels: usize,
    filters: usize,
) -> u128 {
    out_h as u128
        * out_w as u128
        * kernel_h as u128
        * kernel_w as u128
        * channels as u128
        * filters as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        let input = FeatureMap::<i64>::from_fn(4, 4, 2, |h, w, c| (h * 8 + w * 2 + c) as i64);
        // 1x1 kernel, M = C, identity matrix across channels.
        let kernel = Kernel::<i64>::from_fn(1, 1, 2, 2, |_, _, c, m| i64::from(c == m));
        let out = conv2d_valid(&input, &kernel, 1).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn stride_subsamples_windows() {
        let input = FeatureMap::<i64>::from_fn(5, 5, 1, |h, w, _| (h * 5 + w) as i64);
        let kernel = Kernel::<i64>::from_fn(1, 1, 1, 1, |_, _, _, _| 1);
        let out = conv2d_valid(&input, &kernel, 2).unwrap();
        assert_eq!(out.height(), 3);
        assert_eq!(out[(1, 1, 0)], 12); // input (2,2)
        assert_eq!(out[(2, 2, 0)], 24); // input (4,4)
    }

    #[test]
    fn multi_channel_accumulates_across_c() {
        let input = FeatureMap::<i64>::from_fn(2, 2, 3, |_, _, c| (c + 1) as i64);
        let kernel = Kernel::<i64>::from_fn(2, 2, 3, 1, |_, _, _, _| 1);
        let out = conv2d_valid(&input, &kernel, 1).unwrap();
        // 4 pixels x (1+2+3) each
        assert_eq!(out[(0, 0, 0)], 24);
    }

    #[test]
    fn channel_mismatch_is_an_error() {
        let input = FeatureMap::<i64>::zeros(3, 3, 2);
        let kernel = Kernel::<i64>::zeros(2, 2, 3, 1);
        assert!(matches!(
            conv2d_valid(&input, &kernel, 1),
            Err(TensorError::ChannelMismatch {
                input: 2,
                kernel: 3
            })
        ));
    }

    #[test]
    fn kernel_larger_than_input_is_an_error() {
        let input = FeatureMap::<i64>::zeros(2, 2, 1);
        let kernel = Kernel::<i64>::zeros(3, 3, 1, 1);
        assert!(conv2d_valid(&input, &kernel, 1).is_err());
    }

    #[test]
    fn zero_stride_is_an_error() {
        let input = FeatureMap::<i64>::zeros(3, 3, 1);
        let kernel = Kernel::<i64>::zeros(2, 2, 1, 1);
        assert!(conv2d_valid(&input, &kernel, 0).is_err());
    }

    #[test]
    fn macs_formula() {
        assert_eq!(
            conv2d_macs(16, 16, 5, 5, 512, 256),
            16 * 16 * 25 * 512 * 256
        );
    }

    #[test]
    fn padded_conv_shrinks_with_stride() {
        let input = FeatureMap::<i64>::from_fn(8, 8, 2, |h, w, c| (h + w + c) as i64);
        let kernel = Kernel::<i64>::from_fn(3, 3, 2, 4, |i, j, c, m| (i + j + c + m) as i64 - 3);
        let out = conv2d(&input, &kernel, 2, 1).unwrap();
        // (8 + 2 - 3)/2 + 1 = 4.
        assert_eq!((out.height(), out.width(), out.channels()), (4, 4, 4));
    }

    #[test]
    fn zero_padding_matches_manual_pad() {
        let input = FeatureMap::<i64>::from_fn(3, 3, 1, |h, w, _| (h * 3 + w + 1) as i64);
        let kernel = Kernel::<i64>::from_fn(2, 2, 1, 1, |_, _, _, _| 1);
        let padded = conv2d(&input, &kernel, 1, 1).unwrap();
        // Top-left window covers three zeros and input (0,0).
        assert_eq!(padded[(0, 0, 0)], 1);
        assert_eq!(padded.height(), 4);
        // padding 0 delegates to the valid path.
        let valid = conv2d(&input, &kernel, 1, 0).unwrap();
        assert_eq!(valid, conv2d_valid(&input, &kernel, 1).unwrap());
    }
}
