use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error for invalid shape or hyper-parameter combinations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShapeError {
    /// A dimension that must be positive was zero.
    ZeroDimension(&'static str),
    /// Data length does not match the product of the dimensions.
    LengthMismatch {
        /// Expected element count (product of dimensions).
        expected: usize,
        /// Actual data length supplied.
        actual: usize,
    },
    /// Padding is too large for the kernel (`padding >= kernel` would drop
    /// whole kernel rows/columns and make the output size negative for
    /// small inputs).
    PaddingTooLarge {
        /// The kernel extent on the violating axis.
        kernel: usize,
        /// The requested padding.
        padding: usize,
    },
    /// `output_padding` must be strictly smaller than `stride`.
    OutputPaddingTooLarge {
        /// The configured stride.
        stride: usize,
        /// The requested output padding.
        output_padding: usize,
    },
    /// The configured padding consumes the whole output for this input
    /// extent (`stride*(n-1) + kernel + output_padding <= 2*padding`).
    EmptyOutput {
        /// The input extent that produced the empty output.
        input: usize,
    },
    /// Two chained layers do not fit together: the upstream layer's output
    /// geometry differs from the downstream layer's expected input.
    ChainMismatch {
        /// Index (in execution order) of the downstream layer whose input
        /// does not match.
        layer: usize,
        /// `(height, width, channels)` produced by layer `layer - 1`.
        produced: (usize, usize, usize),
        /// `(height, width, channels)` layer `layer` expects as input.
        expected: (usize, usize, usize),
    },
    /// An index was out of range for the tensor shape.
    IndexOutOfBounds {
        /// Description of the axis that overflowed.
        axis: &'static str,
        /// The offending index.
        index: usize,
        /// The axis length.
        len: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDimension(name) => write!(f, "dimension `{name}` must be positive"),
            ShapeError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
            ShapeError::PaddingTooLarge { kernel, padding } => {
                write!(f, "padding {padding} too large for kernel extent {kernel}")
            }
            ShapeError::OutputPaddingTooLarge {
                stride,
                output_padding,
            } => write!(
                f,
                "output padding {output_padding} must be smaller than stride {stride}"
            ),
            ShapeError::EmptyOutput { input } => {
                write!(
                    f,
                    "padding consumes the whole output for input extent {input}"
                )
            }
            ShapeError::ChainMismatch {
                layer,
                produced,
                expected,
            } => write!(
                f,
                "layer {layer} expects input {}x{}x{} but its upstream layer produces {}x{}x{}",
                expected.0, expected.1, expected.2, produced.0, produced.1, produced.2
            ),
            ShapeError::IndexOutOfBounds { axis, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for axis `{axis}` of length {len}"
                )
            }
        }
    }
}

impl Error for ShapeError {}

/// Hyper-parameters of a deconvolution (transposed-convolution) layer.
///
/// Matches the PyTorch `ConvTranspose2d` geometry convention, which is the
/// one the paper's Table I layers were defined in:
///
/// ```text
/// OH = stride * (IH - 1) + KH - 2 * padding + output_padding
/// ```
///
/// `output_padding` is required to express the 5×5/stride-2 DCGAN and
/// Improved-GAN layers of Table I, whose 8→16 and 4→8 up-samplings are only
/// reachable with `padding = 2, output_padding = 1`.
///
/// # Example
///
/// ```
/// use red_tensor::DeconvSpec;
///
/// # fn main() -> Result<(), red_tensor::TensorError> {
/// // GAN_Deconv1 (DCGAN, Table I): 8x8 -> 16x16, 5x5 kernel, stride 2.
/// let spec = DeconvSpec::with_output_padding(5, 5, 2, 2, 1)?;
/// assert_eq!(spec.output_geometry(8, 8).height, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeconvSpec {
    kernel_h: usize,
    kernel_w: usize,
    stride: usize,
    padding: usize,
    output_padding: usize,
}

impl DeconvSpec {
    /// Creates a spec with no output padding.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any dimension is zero, `padding >= kernel`
    /// on either axis, or `output_padding >= stride`.
    pub fn new(
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, ShapeError> {
        Self::with_output_padding(kernel_h, kernel_w, stride, padding, 0)
    }

    /// Creates a spec with explicit `output_padding` (PyTorch semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] under the same conditions as [`DeconvSpec::new`].
    pub fn with_output_padding(
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
        output_padding: usize,
    ) -> Result<Self, ShapeError> {
        if kernel_h == 0 {
            return Err(ShapeError::ZeroDimension("kernel_h"));
        }
        if kernel_w == 0 {
            return Err(ShapeError::ZeroDimension("kernel_w"));
        }
        if stride == 0 {
            return Err(ShapeError::ZeroDimension("stride"));
        }
        if padding >= kernel_h.min(kernel_w) {
            return Err(ShapeError::PaddingTooLarge {
                kernel: kernel_h.min(kernel_w),
                padding,
            });
        }
        if output_padding >= stride {
            return Err(ShapeError::OutputPaddingTooLarge {
                stride,
                output_padding,
            });
        }
        Ok(Self {
            kernel_h,
            kernel_w,
            stride,
            padding,
            output_padding,
        })
    }

    /// Kernel height `KH`.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Kernel width `KW`.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// Up-sampling stride `s`.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding `p` (transposed-convolution convention).
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output padding (extra rows/columns on the bottom/right edge).
    pub fn output_padding(&self) -> usize {
        self.output_padding
    }

    /// Number of kernel taps, `KH * KW`.
    pub fn taps(&self) -> usize {
        self.kernel_h * self.kernel_w
    }

    /// Whether this spec yields a non-empty output for the given input
    /// extent (small inputs with large padding can crop everything away).
    pub fn output_nonempty(&self, input_extent: usize) -> bool {
        input_extent > 0
            && self.stride * (input_extent - 1)
                + self.kernel_h.min(self.kernel_w)
                + self.output_padding
                > 2 * self.padding
    }

    /// Full output geometry for an `input_h x input_w` feature map.
    ///
    /// # Panics
    ///
    /// Panics if the output would be empty on either axis (check with
    /// [`DeconvSpec::output_nonempty`], or construct a
    /// [`crate::LayerShape`], which validates this).
    pub fn output_geometry(&self, input_h: usize, input_w: usize) -> OutputGeometry {
        assert!(
            self.output_nonempty(input_h) && self.output_nonempty(input_w),
            "padding consumes the whole output for input {input_h}x{input_w}"
        );
        let s = self.stride;
        let full_h = s * (input_h - 1) + self.kernel_h;
        let full_w = s * (input_w - 1) + self.kernel_w;
        let out_h = full_h + self.output_padding - 2 * self.padding;
        let out_w = full_w + self.output_padding - 2 * self.padding;
        // When output_padding > padding the output extends past the scatter
        // extent with structural zeros (PyTorch semantics) instead of being
        // cropped.
        let avail_h = full_h - self.padding;
        let avail_w = full_w - self.padding;
        OutputGeometry {
            height: out_h,
            width: out_w,
            full_height: full_h,
            full_width: full_w,
            crop_before: self.padding,
            crop_after_h: avail_h.saturating_sub(out_h),
            crop_after_w: avail_w.saturating_sub(out_w),
            extend_after_h: out_h.saturating_sub(avail_h),
            extend_after_w: out_w.saturating_sub(avail_w),
        }
    }

    /// Size of the zero-inserted ("up-sampled") map on one axis before
    /// border padding: `s * (n - 1) + 1`.
    pub fn upsampled_extent(&self, n: usize) -> usize {
        self.stride * (n - 1) + 1
    }

    /// Border padding applied on the top/left edge by the zero-padding
    /// algorithm: `K - 1 - p`.
    pub fn border_before(&self, kernel_extent: usize) -> usize {
        kernel_extent - 1 - self.padding
    }

    /// Border padding applied on the bottom/right edge by the zero-padding
    /// algorithm: `K - 1 - p + output_padding`.
    pub fn border_after(&self, kernel_extent: usize) -> usize {
        kernel_extent - 1 - self.padding + self.output_padding
    }

    /// Extent of the padded (zero-inserted + border-padded) map on one axis.
    ///
    /// A stride-1 convolution of this map with the kernel yields exactly the
    /// deconvolution output extent.
    pub fn padded_extent(&self, n: usize, kernel_extent: usize) -> usize {
        self.upsampled_extent(n)
            + self.border_before(kernel_extent)
            + self.border_after(kernel_extent)
    }
}

/// Geometry of a deconvolution output: the cropped output extents, the
/// uncropped ("full" scatter) extents, and the crop offsets relating them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OutputGeometry {
    /// Final output height `OH`.
    pub height: usize,
    /// Final output width `OW`.
    pub width: usize,
    /// Uncropped scatter height `s*(IH-1) + KH`.
    pub full_height: usize,
    /// Uncropped scatter width `s*(IW-1) + KW`.
    pub full_width: usize,
    /// Rows/columns cropped from the top/left (= `padding`).
    pub crop_before: usize,
    /// Rows cropped from the bottom (`padding - output_padding` when
    /// non-negative, else 0).
    pub crop_after_h: usize,
    /// Columns cropped from the right (`padding - output_padding` when
    /// non-negative, else 0).
    pub crop_after_w: usize,
    /// Structural-zero rows appended past the scatter extent when
    /// `output_padding > padding` (PyTorch semantics), else 0.
    pub extend_after_h: usize,
    /// Structural-zero columns appended past the scatter extent when
    /// `output_padding > padding`, else 0.
    pub extend_after_w: usize,
}

impl OutputGeometry {
    /// Total output pixels `OH * OW`.
    pub fn pixels(&self) -> usize {
        self.height * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I geometries must all be reproduced exactly.
    #[test]
    fn table1_output_sizes() {
        // (IH, KH, stride, padding, output_padding, OH)
        let cases = [
            (8, 5, 2, 2, 1, 16),    // GAN_Deconv1 (DCGAN, LSUN)
            (4, 5, 2, 2, 1, 8),     // GAN_Deconv2 (Improved GAN, Cifar-10)
            (4, 4, 2, 1, 0, 8),     // GAN_Deconv3 (SNGAN, Cifar-10)
            (6, 4, 2, 1, 0, 12),    // GAN_Deconv4 (SNGAN, STL-10)
            (16, 4, 2, 0, 0, 34),   // FCN_Deconv1 (voc-fcn8s 2x)
            (70, 16, 8, 0, 0, 568), // FCN_Deconv2 (voc-fcn8s 8x)
        ];
        for (ih, k, s, p, op, oh) in cases {
            let spec = DeconvSpec::with_output_padding(k, k, s, p, op).unwrap();
            let geom = spec.output_geometry(ih, ih);
            assert_eq!(geom.height, oh, "IH={ih} K={k} s={s} p={p} op={op}");
            assert_eq!(geom.width, oh);
        }
    }

    #[test]
    fn padded_extent_matches_stride1_conv() {
        // A stride-1 convolution of the padded map with a KxK kernel
        // produces padded - K + 1 outputs, which must equal OH.
        for (ih, k, s, p, op) in [
            (8usize, 5usize, 2usize, 2usize, 1usize),
            (4, 4, 2, 1, 0),
            (16, 4, 2, 0, 0),
            (70, 16, 8, 0, 0),
            (5, 3, 3, 0, 2),
        ] {
            let spec = DeconvSpec::with_output_padding(k, k, s, p, op).unwrap();
            let padded = spec.padded_extent(ih, k);
            let geom = spec.output_geometry(ih, ih);
            assert_eq!(padded - k + 1, geom.height);
        }
    }

    #[test]
    fn crop_accounting_is_consistent() {
        let spec = DeconvSpec::with_output_padding(5, 5, 2, 2, 1).unwrap();
        let g = spec.output_geometry(8, 8);
        assert_eq!(g.crop_before + g.height + g.crop_after_h, g.full_height);
        assert_eq!(g.crop_before + g.width + g.crop_after_w, g.full_width);
        assert_eq!(g.crop_before, 2);
        assert_eq!(g.crop_after_h, 1); // padding - output_padding
        assert_eq!(g.extend_after_h, 0);
    }

    #[test]
    fn output_padding_beyond_padding_extends_with_zeros() {
        // p = 0, op = 2: the output is two rows taller than the scatter
        // extent; those rows are structural zeros, not crops.
        let spec = DeconvSpec::with_output_padding(3, 3, 3, 0, 2).unwrap();
        let g = spec.output_geometry(5, 5);
        assert_eq!(g.full_height, 15);
        assert_eq!(g.height, 17);
        assert_eq!(g.crop_after_h, 0);
        assert_eq!(g.extend_after_h, 2);
        assert_eq!(
            g.crop_before + g.height + g.crop_after_h,
            g.full_height + g.extend_after_h
        );
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(matches!(
            DeconvSpec::new(0, 3, 1, 0),
            Err(ShapeError::ZeroDimension("kernel_h"))
        ));
        assert!(matches!(
            DeconvSpec::new(3, 0, 1, 0),
            Err(ShapeError::ZeroDimension("kernel_w"))
        ));
        assert!(matches!(
            DeconvSpec::new(3, 3, 0, 0),
            Err(ShapeError::ZeroDimension("stride"))
        ));
        assert!(matches!(
            DeconvSpec::new(3, 3, 1, 3),
            Err(ShapeError::PaddingTooLarge { .. })
        ));
        assert!(matches!(
            DeconvSpec::with_output_padding(3, 3, 2, 0, 2),
            Err(ShapeError::OutputPaddingTooLarge { .. })
        ));
    }

    #[test]
    fn asymmetric_kernel_padding_check_uses_min_extent() {
        // padding 2 is valid for a 4-wide axis but not a 2-wide one.
        assert!(DeconvSpec::new(4, 2, 1, 2).is_err());
        assert!(DeconvSpec::new(4, 3, 1, 2).is_ok());
    }

    #[test]
    fn upsampled_and_border_extents() {
        let spec = DeconvSpec::new(4, 4, 2, 1).unwrap();
        assert_eq!(spec.upsampled_extent(4), 7);
        assert_eq!(spec.border_before(4), 2);
        assert_eq!(spec.border_after(4), 2);
        assert_eq!(spec.padded_extent(4, 4), 11);
    }

    #[test]
    fn spec_getters() {
        let spec = DeconvSpec::with_output_padding(5, 3, 2, 1, 1).unwrap();
        assert_eq!(spec.kernel_h(), 5);
        assert_eq!(spec.kernel_w(), 3);
        assert_eq!(spec.stride(), 2);
        assert_eq!(spec.padding(), 1);
        assert_eq!(spec.output_padding(), 1);
        assert_eq!(spec.taps(), 15);
    }
}
