use crate::{Scalar, ShapeError};
use serde::{Deserialize, Serialize};

/// A dense rank-3 tensor laid out as `(height, width, channels)`, row-major
/// with channels innermost.
///
/// This is the feature-map representation used throughout the simulator:
/// index `(h, w, c)` maps to flat offset `(h * width + w) * channels + c`,
/// so the `C` values of one pixel — the input vector one crossbar wordline
/// group consumes in a single cycle — are contiguous.
///
/// # Example
///
/// ```
/// use red_tensor::Tensor3;
///
/// let t = Tensor3::<i64>::from_fn(2, 3, 4, |h, w, c| (h * 100 + w * 10 + c) as i64);
/// assert_eq!(t[(1, 2, 3)], 123);
/// assert_eq!(t.pixel(1, 2), &[120, 121, 122, 123]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tensor3<T> {
    height: usize,
    width: usize,
    channels: usize,
    data: Vec<T>,
}

/// Alias emphasising the neural-network role of a [`Tensor3`].
pub type FeatureMap<T> = Tensor3<T>;

impl<T: Scalar> Tensor3<T> {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; use [`Tensor3::try_new`] for a
    /// fallible variant.
    pub fn zeros(height: usize, width: usize, channels: usize) -> Self {
        Self::try_new(height, width, channels).expect("tensor dimensions must be positive")
    }

    /// Creates a zero-filled tensor, rejecting zero dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDimension`] if any dimension is zero.
    pub fn try_new(height: usize, width: usize, channels: usize) -> Result<Self, ShapeError> {
        if height == 0 {
            return Err(ShapeError::ZeroDimension("height"));
        }
        if width == 0 {
            return Err(ShapeError::ZeroDimension("width"));
        }
        if channels == 0 {
            return Err(ShapeError::ZeroDimension("channels"));
        }
        Ok(Self {
            height,
            width,
            channels,
            data: vec![T::ZERO; height * width * channels],
        })
    }

    /// Builds a tensor by evaluating `f(h, w, c)` at every coordinate.
    pub fn from_fn(
        height: usize,
        width: usize,
        channels: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut t = Self::zeros(height, width, channels);
        for h in 0..height {
            for w in 0..width {
                for c in 0..channels {
                    t[(h, w, c)] = f(h, w, c);
                }
            }
        }
        t
    }

    /// Wraps an existing flat buffer (row-major, channels innermost).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] if `data.len()` is not
    /// `height * width * channels`, or [`ShapeError::ZeroDimension`] for a
    /// zero dimension.
    pub fn from_vec(
        height: usize,
        width: usize,
        channels: usize,
        data: Vec<T>,
    ) -> Result<Self, ShapeError> {
        if height == 0 {
            return Err(ShapeError::ZeroDimension("height"));
        }
        if width == 0 {
            return Err(ShapeError::ZeroDimension("width"));
        }
        if channels == 0 {
            return Err(ShapeError::ZeroDimension("channels"));
        }
        let expected = height * width * channels;
        if data.len() != expected {
            return Err(ShapeError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            height,
            width,
            channels,
            data,
        })
    }

    /// Height (`IH`/`OH`).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width (`IW`/`OW`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Channel count (`C`/`M`).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements (never true for a valid tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat element buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the tensor and returns the flat buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// The channel vector of one pixel, contiguous in memory.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is out of bounds.
    pub fn pixel(&self, h: usize, w: usize) -> &[T] {
        assert!(
            h < self.height && w < self.width,
            "pixel index out of bounds"
        );
        let base = (h * self.width + w) * self.channels;
        &self.data[base..base + self.channels]
    }

    /// Mutable channel vector of one pixel.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is out of bounds.
    pub fn pixel_mut(&mut self, h: usize, w: usize) -> &mut [T] {
        assert!(
            h < self.height && w < self.width,
            "pixel index out of bounds"
        );
        let base = (h * self.width + w) * self.channels;
        &mut self.data[base..base + self.channels]
    }

    /// Checked element access.
    pub fn get(&self, h: usize, w: usize, c: usize) -> Option<&T> {
        if h < self.height && w < self.width && c < self.channels {
            Some(&self.data[(h * self.width + w) * self.channels + c])
        } else {
            None
        }
    }

    /// Number of elements exactly equal to zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| v.is_zero()).count()
    }

    /// Number of pixels whose entire channel vector is zero.
    pub fn count_zero_pixels(&self) -> usize {
        let mut n = 0;
        for h in 0..self.height {
            for w in 0..self.width {
                if self.pixel(h, w).iter().all(Scalar::is_zero) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Element-wise maximum absolute difference against another tensor of
    /// the same shape, as `f64`. Useful for quantization error reporting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(
            (self.height, self.width, self.channels),
            (other.height, other.width, other.channels),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Maps every element through `f`, producing a tensor of a new scalar type.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Tensor3<U> {
        Tensor3 {
            height: self.height,
            width: self.width,
            channels: self.channels,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Extracts the sub-tensor `rows x cols` starting at `(h0, w0)` with all
    /// channels (used by the crop step of the padding-free algorithm).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the tensor bounds.
    pub fn crop(&self, h0: usize, w0: usize, rows: usize, cols: usize) -> Self {
        assert!(
            h0 + rows <= self.height && w0 + cols <= self.width,
            "crop window out of bounds"
        );
        Self::from_fn(rows, cols, self.channels, |h, w, c| {
            self[(h0 + h, w0 + w, c)]
        })
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize, usize)> for Tensor3<T> {
    type Output = T;

    fn index(&self, (h, w, c): (usize, usize, usize)) -> &T {
        assert!(
            h < self.height && w < self.width && c < self.channels,
            "Tensor3 index ({h},{w},{c}) out of bounds for {}x{}x{}",
            self.height,
            self.width,
            self.channels
        );
        &self.data[(h * self.width + w) * self.channels + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize, usize)> for Tensor3<T> {
    fn index_mut(&mut self, (h, w, c): (usize, usize, usize)) -> &mut T {
        assert!(
            h < self.height && w < self.width && c < self.channels,
            "Tensor3 index ({h},{w},{c}) out of bounds for {}x{}x{}",
            self.height,
            self.width,
            self.channels
        );
        &mut self.data[(h * self.width + w) * self.channels + c]
    }
}

/// A dense rank-4 kernel tensor laid out as `(kh, kw, c, m)` with the filter
/// index `m` innermost.
///
/// Index `(i, j, c, m)` maps to `((i * KW + j) * C + c) * M + m`, so the `M`
/// weights that share one crossbar row (same tap, same channel) are
/// contiguous — mirroring the column-per-filter kernel mapping of Fig. 1(b).
///
/// # Example
///
/// ```
/// use red_tensor::Tensor4;
///
/// let k = Tensor4::<i64>::from_fn(3, 3, 2, 4, |i, j, c, m| (i + j + c + m) as i64);
/// assert_eq!(k[(2, 1, 0, 3)], 6);
/// assert_eq!(k.filters(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tensor4<T> {
    kernel_h: usize,
    kernel_w: usize,
    channels: usize,
    filters: usize,
    data: Vec<T>,
}

/// Alias emphasising the neural-network role of a [`Tensor4`].
pub type Kernel<T> = Tensor4<T>;

impl<T: Scalar> Tensor4<T> {
    /// Creates a zero-filled kernel.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(kernel_h: usize, kernel_w: usize, channels: usize, filters: usize) -> Self {
        assert!(
            kernel_h > 0 && kernel_w > 0 && channels > 0 && filters > 0,
            "kernel dimensions must be positive"
        );
        Self {
            kernel_h,
            kernel_w,
            channels,
            filters,
            data: vec![T::ZERO; kernel_h * kernel_w * channels * filters],
        }
    }

    /// Builds a kernel by evaluating `f(i, j, c, m)` at every coordinate.
    pub fn from_fn(
        kernel_h: usize,
        kernel_w: usize,
        channels: usize,
        filters: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut t = Self::zeros(kernel_h, kernel_w, channels, filters);
        for i in 0..kernel_h {
            for j in 0..kernel_w {
                for c in 0..channels {
                    for m in 0..filters {
                        t[(i, j, c, m)] = f(i, j, c, m);
                    }
                }
            }
        }
        t
    }

    /// Kernel height `KH`.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Kernel width `KW`.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// Input channel count `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Filter (output feature map) count `M`.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Total element count `KH*KW*C*M`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the kernel has no elements (never true for a valid kernel).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat element buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The `M` filter weights at tap `(i, j)`, channel `c` — one crossbar
    /// row in the Fig. 1(b) mapping.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn row(&self, i: usize, j: usize, c: usize) -> &[T] {
        assert!(
            i < self.kernel_h && j < self.kernel_w && c < self.channels,
            "kernel row index out of bounds"
        );
        let base = ((i * self.kernel_w + j) * self.channels + c) * self.filters;
        &self.data[base..base + self.filters]
    }

    /// The kernel rotated by 180° in the spatial plane:
    /// `rot[i,j,c,m] = self[KH-1-i, KW-1-j, c, m]`.
    ///
    /// The padding-free algorithm (Fig. 2, Algorithm 2, step a) is defined in
    /// terms of this rotation.
    pub fn rotate_180(&self) -> Self {
        Self::from_fn(
            self.kernel_h,
            self.kernel_w,
            self.channels,
            self.filters,
            |i, j, c, m| self[(self.kernel_h - 1 - i, self.kernel_w - 1 - j, c, m)],
        )
    }

    /// Maps every element through `f`, producing a kernel of a new scalar type.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Tensor4<U> {
        Tensor4 {
            kernel_h: self.kernel_h,
            kernel_w: self.kernel_w,
            channels: self.channels,
            filters: self.filters,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;

    fn index(&self, (i, j, c, m): (usize, usize, usize, usize)) -> &T {
        assert!(
            i < self.kernel_h && j < self.kernel_w && c < self.channels && m < self.filters,
            "Tensor4 index out of bounds"
        );
        &self.data[((i * self.kernel_w + j) * self.channels + c) * self.filters + m]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    fn index_mut(&mut self, (i, j, c, m): (usize, usize, usize, usize)) -> &mut T {
        assert!(
            i < self.kernel_h && j < self.kernel_w && c < self.channels && m < self.filters,
            "Tensor4 index out of bounds"
        );
        &mut self.data[((i * self.kernel_w + j) * self.channels + c) * self.filters + m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor3_layout_is_channels_innermost() {
        let t = Tensor3::<i64>::from_fn(2, 2, 3, |h, w, c| (h * 100 + w * 10 + c) as i64);
        assert_eq!(t.as_slice()[0..3], [0, 1, 2]);
        assert_eq!(t.as_slice()[3..6], [10, 11, 12]);
        assert_eq!(t.pixel(1, 1), &[110, 111, 112]);
    }

    #[test]
    fn tensor3_from_vec_validates_length() {
        assert!(Tensor3::from_vec(2, 2, 2, vec![0i64; 8]).is_ok());
        assert!(matches!(
            Tensor3::from_vec(2, 2, 2, vec![0i64; 7]),
            Err(ShapeError::LengthMismatch {
                expected: 8,
                actual: 7
            })
        ));
        assert!(Tensor3::from_vec(0, 2, 2, Vec::<i64>::new()).is_err());
    }

    #[test]
    fn tensor3_zero_counting() {
        let mut t = Tensor3::<i64>::zeros(2, 2, 2);
        assert_eq!(t.count_zeros(), 8);
        assert_eq!(t.count_zero_pixels(), 4);
        t[(0, 0, 0)] = 5;
        assert_eq!(t.count_zeros(), 7);
        assert_eq!(t.count_zero_pixels(), 3);
    }

    #[test]
    fn tensor3_crop_extracts_window() {
        let t = Tensor3::<i64>::from_fn(4, 4, 1, |h, w, _| (h * 4 + w) as i64);
        let c = t.crop(1, 2, 2, 2);
        assert_eq!(c.height(), 2);
        assert_eq!(c.width(), 2);
        assert_eq!(c[(0, 0, 0)], 6);
        assert_eq!(c[(1, 1, 0)], 11);
    }

    #[test]
    #[should_panic(expected = "crop window out of bounds")]
    fn tensor3_crop_out_of_bounds_panics() {
        let t = Tensor3::<i64>::zeros(3, 3, 1);
        let _ = t.crop(2, 2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tensor3_index_out_of_bounds_panics() {
        let t = Tensor3::<i64>::zeros(2, 2, 2);
        let _ = t[(2, 0, 0)];
    }

    #[test]
    fn tensor3_get_checked() {
        let t = Tensor3::<i64>::zeros(2, 2, 2);
        assert!(t.get(1, 1, 1).is_some());
        assert!(t.get(2, 0, 0).is_none());
        assert!(t.get(0, 2, 0).is_none());
        assert!(t.get(0, 0, 2).is_none());
    }

    #[test]
    fn tensor3_max_abs_diff() {
        let a = Tensor3::<i64>::from_fn(2, 2, 1, |h, w, _| (h + w) as i64);
        let mut b = a.clone();
        b[(1, 1, 0)] += 3;
        assert_eq!(a.max_abs_diff(&b), 3.0);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn tensor3_map_changes_type() {
        let a = Tensor3::<i32>::from_fn(2, 2, 1, |h, w, _| (h + w) as i32);
        let b: Tensor3<f64> = a.map(|v| v as f64 * 0.5);
        assert_eq!(b[(1, 1, 0)], 1.0);
    }

    #[test]
    fn tensor4_row_is_contiguous_filters() {
        let k = Tensor4::<i64>::from_fn(2, 2, 2, 3, |i, j, c, m| {
            (i * 1000 + j * 100 + c * 10 + m) as i64
        });
        assert_eq!(k.row(1, 0, 1), &[1010, 1011, 1012]);
    }

    #[test]
    fn tensor4_rotate_180_involution() {
        let k = Tensor4::<i64>::from_fn(3, 2, 2, 2, |i, j, c, m| {
            (i * 31 + j * 17 + c * 5 + m) as i64
        });
        let r = k.rotate_180();
        assert_eq!(r[(0, 0, 1, 1)], k[(2, 1, 1, 1)]);
        assert_eq!(r.rotate_180(), k);
    }

    #[test]
    fn tensor4_len_and_dims() {
        let k = Tensor4::<i64>::zeros(5, 5, 512, 256);
        assert_eq!(k.len(), 5 * 5 * 512 * 256);
        assert_eq!(
            (k.kernel_h(), k.kernel_w(), k.channels(), k.filters()),
            (5, 5, 512, 256)
        );
        assert!(!k.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn tensor4_zero_dim_panics() {
        let _ = Tensor4::<i64>::zeros(0, 1, 1, 1);
    }
}
