//! Computation-mode decomposition of a strided deconvolution (paper Fig. 6).
//!
//! Sliding a `KH x KW` kernel over the zero-inserted map repeats `stride²`
//! distinct patterns of "which kernel taps hit real pixels". The paper calls
//! these the *computation modes*; they are the foundation of RED's
//! pixel-wise mapping (each mode touches a disjoint subset of taps, so the
//! per-tap sub-crossbars of a mode group can run concurrently).
//!
//! A mode is identified by the residue pair `(a, b) = ((u+p) mod s, (v+p) mod s)`
//! of the output pixel `(u, v)`; its active taps are exactly
//! `{ (i, j) : i ≡ a, j ≡ b (mod s) }`.

use crate::DeconvSpec;
use serde::{Deserialize, Serialize};

/// One computation mode: an output-pixel residue class and its active taps.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mode {
    /// Row residue `(u + p) mod s`.
    pub row_residue: usize,
    /// Column residue `(v + p) mod s`.
    pub col_residue: usize,
    /// Kernel taps `(i, j)` active in this mode, in row-major order.
    pub taps: Vec<(usize, usize)>,
}

impl Mode {
    /// Number of active taps — the number of sub-crossbars whose outputs are
    /// merged to produce one output pixel of this mode.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }
}

/// The full mode decomposition for a deconvolution spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeSet {
    stride: usize,
    modes: Vec<Mode>,
}

impl ModeSet {
    /// Enumerates all `stride²` computation modes of `spec`.
    ///
    /// # Example
    ///
    /// ```
    /// use red_tensor::{DeconvSpec, modes::ModeSet};
    ///
    /// # fn main() -> Result<(), red_tensor::TensorError> {
    /// // The paper's Fig. 6 example: 3x3 kernel, stride 2.
    /// let spec = DeconvSpec::new(3, 3, 2, 0)?;
    /// let set = ModeSet::enumerate(&spec);
    /// assert_eq!(set.len(), 4);
    /// // Mode (0,0) holds the four corner+center taps 1,3,7,9 (paper's
    /// // numbering): (0,0),(0,2),(2,0),(2,2).
    /// let m = set.mode(0, 0);
    /// assert_eq!(m.taps, vec![(0,0),(0,2),(2,0),(2,2)]);
    /// // Mode (0,1) holds taps 4 and 6... in paper numbering that figure's
    /// // horizontal slide: (1,0),(1,2) for row residue 1, col residue 0.
    /// assert_eq!(set.mode(1, 0).taps, vec![(1,0),(1,2)]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn enumerate(spec: &DeconvSpec) -> Self {
        let s = spec.stride();
        let mut modes = Vec::with_capacity(s * s);
        for a in 0..s {
            for b in 0..s {
                let mut taps = Vec::new();
                let mut i = a;
                while i < spec.kernel_h() {
                    let mut j = b;
                    while j < spec.kernel_w() {
                        taps.push((i, j));
                        j += s;
                    }
                    i += s;
                }
                modes.push(Mode {
                    row_residue: a,
                    col_residue: b,
                    taps,
                });
            }
        }
        Self { stride: s, modes }
    }

    /// Number of modes (`stride²`).
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// `true` when there are no modes (never for a valid spec).
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// The mode with the given residues.
    ///
    /// # Panics
    ///
    /// Panics if either residue is `>= stride`.
    pub fn mode(&self, row_residue: usize, col_residue: usize) -> &Mode {
        assert!(
            row_residue < self.stride && col_residue < self.stride,
            "mode residue out of range"
        );
        &self.modes[row_residue * self.stride + col_residue]
    }

    /// The mode an output pixel `(u, v)` belongs to, given padding `p`.
    pub fn mode_of_output(&self, u: usize, v: usize, padding: usize) -> &Mode {
        self.mode((u + padding) % self.stride, (v + padding) % self.stride)
    }

    /// Iterates over all modes in `(row_residue, col_residue)` order.
    pub fn iter(&self) -> std::slice::Iter<'_, Mode> {
        self.modes.iter()
    }

    /// The largest tap count over all modes — the widest sub-crossbar merge
    /// group the RED dataflow needs: `ceil(KH/s) * ceil(KW/s)`.
    pub fn max_tap_count(&self) -> usize {
        self.modes.iter().map(Mode::tap_count).max().unwrap_or(0)
    }
}

impl<'a> IntoIterator for &'a ModeSet {
    type Item = &'a Mode;
    type IntoIter = std::slice::Iter<'a, Mode>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_example_modes() {
        // 3x3 kernel, stride 2 (paper Fig. 6): four modes with 4/2/2/1 taps.
        let spec = DeconvSpec::new(3, 3, 2, 0).unwrap();
        let set = ModeSet::enumerate(&spec);
        assert_eq!(set.len(), 4);
        let counts: Vec<usize> = set.iter().map(Mode::tap_count).collect();
        assert_eq!(counts, vec![4, 2, 2, 1]);
        assert_eq!(set.max_tap_count(), 4);
    }

    #[test]
    fn taps_partition_the_kernel() {
        for (k, s) in [(3usize, 2usize), (4, 2), (5, 2), (16, 8), (4, 4), (3, 5)] {
            let spec = DeconvSpec::new(k, k, s, 0).unwrap();
            let set = ModeSet::enumerate(&spec);
            let mut seen = std::collections::HashSet::new();
            for m in &set {
                for &t in &m.taps {
                    assert!(seen.insert(t), "tap {t:?} in two modes (k={k}, s={s})");
                }
            }
            assert_eq!(
                seen.len(),
                k * k,
                "modes must cover the kernel (k={k}, s={s})"
            );
        }
    }

    #[test]
    fn stride_larger_than_kernel_gives_empty_modes() {
        // s=5, k=3: residues 3 and 4 have no taps — these output pixels are
        // structural zeros (checkerboard holes).
        let spec = DeconvSpec::new(3, 3, 5, 0).unwrap();
        let set = ModeSet::enumerate(&spec);
        assert_eq!(set.len(), 25);
        assert_eq!(set.mode(4, 4).tap_count(), 0);
        assert_eq!(set.mode(0, 0).tap_count(), 1);
    }

    #[test]
    fn mode_of_output_respects_padding() {
        let spec = DeconvSpec::new(4, 4, 2, 1).unwrap();
        let set = ModeSet::enumerate(&spec);
        // With p=1, output (0,0) has residues (1,1).
        let m = set.mode_of_output(0, 0, 1);
        assert_eq!((m.row_residue, m.col_residue), (1, 1));
    }

    #[test]
    fn max_tap_count_formula() {
        for (k, s) in [(5usize, 2usize), (16, 8), (4, 2), (7, 3)] {
            let spec = DeconvSpec::new(k, k, s, 0).unwrap();
            let set = ModeSet::enumerate(&spec);
            let expect = k.div_ceil(s) * k.div_ceil(s);
            assert_eq!(set.max_tap_count(), expect);
        }
    }

    #[test]
    fn active_taps_match_direct_gather_condition() {
        // A tap (i, j) is used for output (u, v) iff i ≡ (u+p) mod s — the
        // gather-form index condition. Verify the mode table agrees.
        let spec = DeconvSpec::new(5, 5, 2, 2).unwrap();
        let set = ModeSet::enumerate(&spec);
        let p = 2;
        for u in 0..6 {
            let m = set.mode_of_output(u, 0, p);
            for &(i, _) in &m.taps {
                assert_eq!((u + p) % 2, i % 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "mode residue out of range")]
    fn mode_out_of_range_panics() {
        let spec = DeconvSpec::new(3, 3, 2, 0).unwrap();
        let set = ModeSet::enumerate(&spec);
        let _ = set.mode(2, 0);
    }
}
