//! Fixed-point quantization for lowering floating-point layers onto integer
//! crossbar arithmetic.
//!
//! ReRAM crossbars compute with small-integer conductances and bit-serial
//! inputs, so floating-point workloads must be quantized before mapping.
//! The paper (following ISAAC/PipeLayer/ReGAN practice) assumes fixed-point
//! weights and activations; this module provides the symmetric linear
//! quantizer used by the simulator and the error metrics reported alongside
//! approximate results.

use crate::{FeatureMap, Kernel, Scalar};
use serde::{Deserialize, Serialize};

/// Symmetric linear quantization parameters: `q = round(v / scale)` clamped
/// to `[-(2^(bits-1) - 1), 2^(bits-1) - 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Total bits including sign.
    pub bits: u32,
    /// Real value represented by one integer step.
    pub scale: f64,
}

impl QuantParams {
    /// Chooses the scale so that `max_abs` maps to the largest code.
    ///
    /// A `max_abs` of zero (an all-zero tensor) yields scale 1.0 so that
    /// quantization is the identity on zeros.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` (a sign bit alone cannot represent magnitudes)
    /// or `bits > 31`.
    pub fn fit(bits: u32, max_abs: f64) -> Self {
        assert!((2..=31).contains(&bits), "bits must be in 2..=31");
        let qmax = Self::q_max(bits) as f64;
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        Self { bits, scale }
    }

    /// Largest representable code, `2^(bits-1) - 1`.
    pub fn q_max(bits: u32) -> i64 {
        (1i64 << (bits - 1)) - 1
    }

    /// Quantizes one value.
    pub fn quantize(&self, v: f64) -> i64 {
        let q = (v / self.scale).round();
        let qmax = Self::q_max(self.bits) as f64;
        q.clamp(-qmax, qmax) as i64
    }

    /// Reconstructs the real value of a code.
    pub fn dequantize(&self, q: i64) -> f64 {
        q as f64 * self.scale
    }
}

/// A quantized feature map together with its scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMap {
    /// Integer codes.
    pub codes: FeatureMap<i64>,
    /// Quantization parameters used.
    pub params: QuantParams,
}

/// A quantized kernel together with its scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedKernel {
    /// Integer codes.
    pub codes: Kernel<i64>,
    /// Quantization parameters used.
    pub params: QuantParams,
}

fn max_abs<T: Scalar>(data: &[T]) -> f64 {
    data.iter().map(|v| v.to_f64().abs()).fold(0.0, f64::max)
}

/// Quantizes a floating-point feature map to `bits` bits, symmetric,
/// per-tensor scale.
///
/// # Example
///
/// ```
/// use red_tensor::FeatureMap;
/// use red_tensor::quant::quantize_map;
///
/// let m = FeatureMap::<f64>::from_fn(2, 2, 1, |h, w, _| (h as f64 - w as f64) * 0.5);
/// let q = quantize_map(&m, 8);
/// assert_eq!(q.codes[(1, 0, 0)], 127);    // +0.5 is the max magnitude
/// assert_eq!(q.codes[(0, 1, 0)], -127);
/// ```
pub fn quantize_map(map: &FeatureMap<f64>, bits: u32) -> QuantizedMap {
    let params = QuantParams::fit(bits, max_abs(map.as_slice()));
    QuantizedMap {
        codes: map.map(|v| params.quantize(v)),
        params,
    }
}

/// Quantizes a floating-point kernel to `bits` bits, symmetric, per-tensor
/// scale.
pub fn quantize_kernel(kernel: &Kernel<f64>, bits: u32) -> QuantizedKernel {
    let params = QuantParams::fit(bits, max_abs(kernel.as_slice()));
    QuantizedKernel {
        codes: kernel.map(|v| params.quantize(v)),
        params,
    }
}

/// Dequantizes an integer result produced by multiplying `bits`-quantized
/// inputs and weights: the output scale is the product of the two scales.
pub fn dequantize_output(
    out: &FeatureMap<i64>,
    input_params: QuantParams,
    kernel_params: QuantParams,
) -> FeatureMap<f64> {
    let s = input_params.scale * kernel_params.scale;
    out.map(|q| q as f64 * s)
}

/// A kernel quantized with one scale per output filter.
///
/// Filters of a trained network span very different magnitude ranges; a
/// single per-tensor scale wastes codes on the small-magnitude filters.
/// Per-filter scales (standard practice in deployed int8 pipelines, and
/// natural on a crossbar where each filter owns its own column group)
/// recover that resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedKernelPerFilter {
    /// Integer codes.
    pub codes: Kernel<i64>,
    /// One [`QuantParams`] per filter `m`.
    pub params: Vec<QuantParams>,
}

/// Quantizes a kernel with an independent symmetric scale per filter.
pub fn quantize_kernel_per_filter(kernel: &Kernel<f64>, bits: u32) -> QuantizedKernelPerFilter {
    let m_count = kernel.filters();
    let mut maxes = vec![0.0f64; m_count];
    for i in 0..kernel.kernel_h() {
        for j in 0..kernel.kernel_w() {
            for c in 0..kernel.channels() {
                for (m, &w) in kernel.row(i, j, c).iter().enumerate() {
                    maxes[m] = maxes[m].max(w.abs());
                }
            }
        }
    }
    let params: Vec<QuantParams> = maxes.iter().map(|&mx| QuantParams::fit(bits, mx)).collect();
    let codes = Kernel::from_fn(
        kernel.kernel_h(),
        kernel.kernel_w(),
        kernel.channels(),
        kernel.filters(),
        |i, j, c, m| params[m].quantize(kernel[(i, j, c, m)]),
    );
    QuantizedKernelPerFilter { codes, params }
}

/// Dequantizes an integer output produced with per-filter kernel scales:
/// output channel `m` uses `input_scale * kernel_scale[m]`.
///
/// # Panics
///
/// Panics if the channel count does not match the parameter list.
pub fn dequantize_output_per_filter(
    out: &FeatureMap<i64>,
    input_params: QuantParams,
    kernel_params: &[QuantParams],
) -> FeatureMap<f64> {
    assert_eq!(
        out.channels(),
        kernel_params.len(),
        "one kernel scale per output channel"
    );
    FeatureMap::from_fn(out.height(), out.width(), out.channels(), |h, w, m| {
        out[(h, w, m)] as f64 * input_params.scale * kernel_params[m].scale
    })
}

/// Root-mean-square error between a reference and an approximation.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn rmse(reference: &FeatureMap<f64>, approx: &FeatureMap<f64>) -> f64 {
    assert_eq!(
        (reference.height(), reference.width(), reference.channels()),
        (approx.height(), approx.width(), approx.channels()),
        "shape mismatch in rmse"
    );
    let n = reference.len() as f64;
    let sum: f64 = reference
        .as_slice()
        .iter()
        .zip(approx.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    (sum / n).sqrt()
}

/// Signal-to-quantization-noise ratio in dB (`10 log10(P_signal / P_noise)`).
/// Returns `f64::INFINITY` for an exact match.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn sqnr_db(reference: &FeatureMap<f64>, approx: &FeatureMap<f64>) -> f64 {
    let signal: f64 = reference.as_slice().iter().map(|v| v * v).sum();
    let noise: f64 = reference
        .as_slice()
        .iter()
        .zip(approx.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_maps_max_to_qmax() {
        let p = QuantParams::fit(8, 2.54);
        assert_eq!(p.quantize(2.54), 127);
        assert_eq!(p.quantize(-2.54), -127);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    fn quantize_clamps_outliers() {
        let p = QuantParams::fit(8, 1.0);
        assert_eq!(p.quantize(5.0), 127);
        assert_eq!(p.quantize(-5.0), -127);
    }

    #[test]
    fn zero_tensor_has_identity_scale() {
        let p = QuantParams::fit(8, 0.0);
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=31")]
    fn one_bit_rejected() {
        let _ = QuantParams::fit(1, 1.0);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let p = QuantParams::fit(8, 1.0);
        for i in 0..100 {
            let v = -1.0 + 0.02 * i as f64;
            let err = (p.dequantize(p.quantize(v)) - v).abs();
            assert!(err <= p.scale / 2.0 + 1e-12, "v={v} err={err}");
        }
    }

    #[test]
    fn output_scale_is_product_of_scales() {
        use crate::deconv::deconv_direct;
        use crate::DeconvSpec;

        let spec = DeconvSpec::new(3, 3, 2, 0).unwrap();
        let input = FeatureMap::<f64>::from_fn(3, 3, 2, |h, w, c| {
            ((h * 3 + w) as f64 - 4.0) * 0.1 + c as f64 * 0.05
        });
        let kernel = Kernel::<f64>::from_fn(3, 3, 2, 2, |i, j, c, m| {
            ((i + j + c + m) as f64 - 3.0) * 0.2
        });
        let qi = quantize_map(&input, 8);
        let qk = quantize_kernel(&kernel, 8);
        let int_out = deconv_direct(&qi.codes, &qk.codes, &spec).unwrap();
        let approx = dequantize_output(&int_out, qi.params, qk.params);
        let exact = deconv_direct(&input, &kernel, &spec).unwrap();
        // 8-bit quantization of smooth data should be accurate to a few
        // percent of full scale and have healthy SQNR.
        assert!(
            rmse(&exact, &approx) < 0.05,
            "rmse = {}",
            rmse(&exact, &approx)
        );
        assert!(sqnr_db(&exact, &approx) > 25.0);
    }

    #[test]
    fn sqnr_exact_match_is_infinite() {
        let m = FeatureMap::<f64>::from_fn(2, 2, 1, |h, w, _| (h + w) as f64);
        assert_eq!(sqnr_db(&m, &m), f64::INFINITY);
        assert_eq!(rmse(&m, &m), 0.0);
    }

    #[test]
    fn per_filter_beats_per_tensor_on_mixed_scales() {
        use crate::deconv::deconv_direct;
        use crate::DeconvSpec;

        // Filter 0 is 100x larger than filter 1: a shared scale starves
        // filter 1 of resolution.
        let kernel = Kernel::<f64>::from_fn(3, 3, 2, 2, |i, j, c, m| {
            let base = ((i * 3 + j + c) as f64 - 4.0) * 0.1;
            if m == 0 {
                base * 100.0
            } else {
                base
            }
        });
        let spec = DeconvSpec::new(3, 3, 2, 0).unwrap();
        let input =
            FeatureMap::<f64>::from_fn(4, 4, 2, |h, w, c| ((h * 4 + w + c) as f64 * 0.37).sin());
        let exact = deconv_direct(&input, &kernel, &spec).unwrap();
        let qi = quantize_map(&input, 8);

        let per_tensor = quantize_kernel(&kernel, 8);
        let out_pt = deconv_direct(&qi.codes, &per_tensor.codes, &spec).unwrap();
        let approx_pt = dequantize_output(&out_pt, qi.params, per_tensor.params);

        let per_filter = quantize_kernel_per_filter(&kernel, 8);
        let out_pf = deconv_direct(&qi.codes, &per_filter.codes, &spec).unwrap();
        let approx_pf = dequantize_output_per_filter(&out_pf, qi.params, &per_filter.params);

        // The win shows on the *small* filter (m = 1): the shared scale is
        // sized for the 100x filter and starves it of codes. Compare RMSE
        // restricted to that channel.
        let channel_rmse = |a: &FeatureMap<f64>, b: &FeatureMap<f64>, m: usize| -> f64 {
            let mut sum = 0.0;
            let mut n = 0.0;
            for h in 0..a.height() {
                for w in 0..a.width() {
                    let d = a[(h, w, m)] - b[(h, w, m)];
                    sum += d * d;
                    n += 1.0;
                }
            }
            (sum / n).sqrt()
        };
        let err_pt = channel_rmse(&exact, &approx_pt, 1);
        let err_pf = channel_rmse(&exact, &approx_pf, 1);
        assert!(
            err_pf < err_pt / 5.0,
            "per-filter ({err_pf}) should be far more accurate than per-tensor ({err_pt}) on the small filter"
        );
        // And never worse overall.
        assert!(rmse(&exact, &approx_pf) <= rmse(&exact, &approx_pt) * 1.01);
    }

    #[test]
    fn per_filter_scales_track_filter_maxima() {
        let kernel = Kernel::<f64>::from_fn(2, 2, 1, 3, |_, _, _, m| (m + 1) as f64);
        let q = quantize_kernel_per_filter(&kernel, 8);
        assert_eq!(q.params.len(), 3);
        for (m, p) in q.params.iter().enumerate() {
            assert!((p.dequantize(p.quantize((m + 1) as f64)) - (m + 1) as f64).abs() < 1e-9);
            assert_eq!(q.codes[(0, 0, 0, m)], 127);
        }
    }

    #[test]
    fn more_bits_reduce_rmse() {
        let m = FeatureMap::<f64>::from_fn(8, 8, 3, |h, w, c| ((h * 13 + w * 7 + c) as f64).sin());
        let q4 = quantize_map(&m, 4);
        let q8 = quantize_map(&m, 8);
        let r4 = rmse(&m, &q4.codes.map(|q| q4.params.dequantize(q)));
        let r8 = rmse(&m, &q8.codes.map(|q| q8.params.dequantize(q)));
        assert!(r8 < r4 / 4.0, "r4={r4} r8={r8}");
    }
}
