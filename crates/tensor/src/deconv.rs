//! The two deconvolution algorithms of the paper (Fig. 2) plus a direct
//! gather-form oracle.
//!
//! All three functions compute the same mathematical transposed convolution;
//! they differ only in *how*, which is exactly the distinction the paper's
//! accelerator designs inherit:
//!
//! | Function | Paper | Hardware analogue |
//! |---|---|---|
//! | [`deconv_zero_padding`] | Algorithm 1 | ReGAN-style zero-padding design |
//! | [`deconv_padding_free`] | Algorithm 2 | FCN-Engine-style padding-free design |
//! | [`deconv_direct`] | definition | — (test oracle) |

use crate::{DeconvSpec, FeatureMap, Kernel, Scalar, TensorError};

fn check_channels<T: Scalar>(input: &FeatureMap<T>, kernel: &Kernel<T>) -> Result<(), TensorError> {
    if input.channels() != kernel.channels() {
        return Err(TensorError::ChannelMismatch {
            input: input.channels(),
            kernel: kernel.channels(),
        });
    }
    Ok(())
}

/// Builds the zero-inserted, border-padded feature map of Algorithm 1
/// (step a — "Padding").
///
/// Real pixel `(x, y)` lands at `(border + s*x, border + s*y)`; everything
/// else is zero. The result has extent [`DeconvSpec::padded_extent`] on each
/// axis, and a stride-1 valid convolution over it with the rotated kernel
/// yields the deconvolution output.
///
/// # Example
///
/// ```
/// use red_tensor::{DeconvSpec, FeatureMap};
/// use red_tensor::deconv::zero_insert_pad;
///
/// # fn main() -> Result<(), red_tensor::TensorError> {
/// let spec = DeconvSpec::new(4, 4, 2, 1)?;
/// let input = FeatureMap::<i64>::from_fn(4, 4, 1, |_, _, _| 1);
/// let padded = zero_insert_pad(&input, &spec);
/// assert_eq!(padded.height(), 11); // 2*(4-1)+1 + 2 + 2
/// // 16 real pixels in 121 slots: the 86.8% redundancy of Fig. 4.
/// assert_eq!(padded.count_zeros(), 121 - 16);
/// # Ok(())
/// # }
/// ```
pub fn zero_insert_pad<T: Scalar>(input: &FeatureMap<T>, spec: &DeconvSpec) -> FeatureMap<T> {
    let s = spec.stride();
    let ph = spec.padded_extent(input.height(), spec.kernel_h());
    let pw = spec.padded_extent(input.width(), spec.kernel_w());
    let bh = spec.border_before(spec.kernel_h());
    let bw = spec.border_before(spec.kernel_w());
    let mut padded = FeatureMap::<T>::zeros(ph, pw, input.channels());
    for x in 0..input.height() {
        for y in 0..input.width() {
            let dst_base = (bh + s * x, bw + s * y);
            let src = input.pixel(x, y);
            padded
                .pixel_mut(dst_base.0, dst_base.1)
                .copy_from_slice(src);
        }
    }
    padded
}

/// Algorithm 1 — zero-padding deconvolution.
///
/// 1. *Padding*: insert `stride-1` zeros between input pixels and pad the
///    border with `K-1-p` zeros (plus `output_padding` on the bottom/right).
/// 2. *Convolution*: stride-1 valid convolution with the 180°-rotated
///    kernel.
///
/// # Errors
///
/// Returns [`TensorError::ChannelMismatch`] when the input and kernel
/// channel counts differ.
pub fn deconv_zero_padding<T: Scalar>(
    input: &FeatureMap<T>,
    kernel: &Kernel<T>,
    spec: &DeconvSpec,
) -> Result<FeatureMap<T>, TensorError> {
    check_channels(input, kernel)?;
    let padded = zero_insert_pad(input, spec);
    let rotated = kernel.rotate_180();
    crate::conv::conv2d_valid(&padded, &rotated, 1)
}

/// The uncropped scatter accumulation of Algorithm 2 (steps a–c), before
/// cropping: `full[s*x + i, s*y + j, m] += sum_c input[x,y,c] * kernel[i,j,c,m]`.
///
/// The result has extent `s*(n-1) + K` per axis
/// ([`crate::OutputGeometry::full_height`]).
///
/// Exposed separately ([C-INTERMEDIATE]) because the padding-free *hardware*
/// design materialises exactly this tensor on its output periphery — the
/// overlap-add accumulators — before the crop; the cost model sizes those
/// accumulators from this tensor's geometry.
///
/// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
pub fn scatter_full<T: Scalar>(
    input: &FeatureMap<T>,
    kernel: &Kernel<T>,
    spec: &DeconvSpec,
) -> Result<FeatureMap<T>, TensorError> {
    check_channels(input, kernel)?;
    let s = spec.stride();
    let geom = spec.output_geometry(input.height(), input.width());
    let mut full = FeatureMap::<T>::zeros(geom.full_height, geom.full_width, kernel.filters());
    for x in 0..input.height() {
        for y in 0..input.width() {
            let px = input.pixel(x, y);
            for i in 0..spec.kernel_h() {
                for j in 0..spec.kernel_w() {
                    let acc = full.pixel_mut(s * x + i, s * y + j);
                    for (c, &v) in px.iter().enumerate() {
                        if v.is_zero() {
                            continue;
                        }
                        for (m, &w) in kernel.row(i, j, c).iter().enumerate() {
                            acc[m] += v * w;
                        }
                    }
                }
            }
        }
    }
    Ok(full)
}

/// Algorithm 2 — padding-free deconvolution.
///
/// 1. *Rotation*: conceptually rotate the kernel 180°. (In the scatter
///    formulation used here the rotation is implicit: scattering with the
///    un-rotated kernel is algebraically identical to gathering with the
///    rotated one, see the equivalence tests.)
/// 2. *Convolution*: MAC each real input pixel against the full kernel.
/// 3. *Addition*: overlap-add the `KH x KW x M` partial products.
/// 4. *Cropping*: remove `p` pixels from the top/left and `p - op` from the
///    bottom/right.
///
/// # Errors
///
/// Returns [`TensorError::ChannelMismatch`] when the input and kernel
/// channel counts differ.
pub fn deconv_padding_free<T: Scalar>(
    input: &FeatureMap<T>,
    kernel: &Kernel<T>,
    spec: &DeconvSpec,
) -> Result<FeatureMap<T>, TensorError> {
    let full = scatter_full(input, kernel, spec)?;
    let geom = spec.output_geometry(input.height(), input.width());
    if geom.extend_after_h == 0 && geom.extend_after_w == 0 {
        return Ok(full.crop(geom.crop_before, geom.crop_before, geom.height, geom.width));
    }
    // output_padding > padding: the output extends past the scatter extent
    // with structural zeros (PyTorch semantics).
    let p = geom.crop_before;
    let mut out = FeatureMap::<T>::zeros(geom.height, geom.width, kernel.filters());
    for u in 0..geom.height.min(geom.full_height.saturating_sub(p)) {
        for v in 0..geom.width.min(geom.full_width.saturating_sub(p)) {
            out.pixel_mut(u, v)
                .copy_from_slice(full.pixel(u + p, v + p));
        }
    }
    Ok(out)
}

/// Direct gather-form definition of transposed convolution, used as the
/// independent oracle:
///
/// `out[u,v,m] = sum over (x,y,c) of input[x,y,c] * kernel[u + p - s*x, v + p - s*y, c, m]`
/// for tap indices that fall inside the kernel.
///
/// # Errors
///
/// Returns [`TensorError::ChannelMismatch`] when the input and kernel
/// channel counts differ.
pub fn deconv_direct<T: Scalar>(
    input: &FeatureMap<T>,
    kernel: &Kernel<T>,
    spec: &DeconvSpec,
) -> Result<FeatureMap<T>, TensorError> {
    check_channels(input, kernel)?;
    let s = spec.stride();
    let p = spec.padding();
    let geom = spec.output_geometry(input.height(), input.width());
    let mut out = FeatureMap::<T>::zeros(geom.height, geom.width, kernel.filters());
    for u in 0..geom.height {
        for v in 0..geom.width {
            for x in 0..input.height() {
                // i = u + p - s*x must be in [0, KH)
                let i = match (u + p).checked_sub(s * x) {
                    Some(i) if i < spec.kernel_h() => i,
                    _ => continue,
                };
                for y in 0..input.width() {
                    let j = match (v + p).checked_sub(s * y) {
                        Some(j) if j < spec.kernel_w() => j,
                        _ => continue,
                    };
                    let px = input.pixel(x, y);
                    let acc = out.pixel_mut(u, v);
                    for (c, &val) in px.iter().enumerate() {
                        if val.is_zero() {
                            continue;
                        }
                        for (m, &w) in kernel.row(i, j, c).iter().enumerate() {
                            acc[m] += val * w;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(k: usize, s: usize, p: usize, op: usize) -> DeconvSpec {
        DeconvSpec::with_output_padding(k, k, s, p, op).unwrap()
    }

    fn ramp_input(h: usize, w: usize, c: usize) -> FeatureMap<i64> {
        FeatureMap::from_fn(h, w, c, |x, y, z| (x * 131 + y * 17 + z * 7 + 1) as i64)
    }

    fn ramp_kernel(k: usize, c: usize, m: usize) -> Kernel<i64> {
        Kernel::from_fn(k, k, c, m, |i, j, cc, mm| {
            (i * 37 + j * 11 + cc * 3 + mm) as i64 - 20
        })
    }

    #[test]
    fn all_three_agree_sngan_geometry() {
        let sp = spec(4, 2, 1, 0);
        let input = ramp_input(4, 4, 3);
        let kernel = ramp_kernel(4, 3, 2);
        let a = deconv_zero_padding(&input, &kernel, &sp).unwrap();
        let b = deconv_padding_free(&input, &kernel, &sp).unwrap();
        let c = deconv_direct(&input, &kernel, &sp).unwrap();
        assert_eq!(a, c);
        assert_eq!(b, c);
        assert_eq!((c.height(), c.width(), c.channels()), (8, 8, 2));
    }

    #[test]
    fn all_three_agree_with_output_padding() {
        // DCGAN-style: 5x5 kernel, stride 2, padding 2, output padding 1.
        let sp = spec(5, 2, 2, 1);
        let input = ramp_input(4, 4, 2);
        let kernel = ramp_kernel(5, 2, 3);
        let a = deconv_zero_padding(&input, &kernel, &sp).unwrap();
        let b = deconv_padding_free(&input, &kernel, &sp).unwrap();
        let c = deconv_direct(&input, &kernel, &sp).unwrap();
        assert_eq!(a, c);
        assert_eq!(b, c);
        assert_eq!(c.height(), 8);
    }

    #[test]
    fn stride_one_reduces_to_full_convolution() {
        let sp = spec(3, 1, 0, 0);
        let input = ramp_input(3, 3, 1);
        let kernel = ramp_kernel(3, 1, 1);
        let out = deconv_padding_free(&input, &kernel, &sp).unwrap();
        // Full (zero-padded) convolution output: IH + KH - 1.
        assert_eq!(out.height(), 5);
        let out2 = deconv_zero_padding(&input, &kernel, &sp).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn single_pixel_input_stamps_kernel() {
        // One input pixel, no padding: the output equals the kernel scaled
        // by the pixel value. This pins the (non-)rotation convention.
        let sp = spec(3, 2, 0, 0);
        let mut input = FeatureMap::<i64>::zeros(1, 1, 1);
        input[(0, 0, 0)] = 2;
        let kernel = Kernel::<i64>::from_fn(3, 3, 1, 1, |i, j, _, _| (i * 3 + j) as i64);
        let out = deconv_direct(&input, &kernel, &sp).unwrap();
        assert_eq!(out.height(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(out[(i, j, 0)], 2 * (i * 3 + j) as i64);
            }
        }
        assert_eq!(out, deconv_zero_padding(&input, &kernel, &sp).unwrap());
        assert_eq!(out, deconv_padding_free(&input, &kernel, &sp).unwrap());
    }

    #[test]
    fn two_pixel_overlap_adds() {
        // stride 2, kernel 3: adjacent kernel stamps overlap in one column.
        let sp = spec(3, 2, 0, 0);
        let mut input = FeatureMap::<i64>::zeros(1, 2, 1);
        input[(0, 0, 0)] = 1;
        input[(0, 1, 0)] = 1;
        let kernel = Kernel::<i64>::from_fn(3, 3, 1, 1, |_, _, _, _| 1);
        let out = deconv_padding_free(&input, &kernel, &sp).unwrap();
        assert_eq!((out.height(), out.width()), (3, 5));
        // Column 2 receives contributions from both stamps.
        assert_eq!(out[(0, 2, 0)], 2);
        assert_eq!(out[(0, 0, 0)], 1);
        assert_eq!(out[(0, 4, 0)], 1);
    }

    #[test]
    fn zero_insert_pad_structure() {
        let sp = spec(4, 2, 1, 0);
        let input = FeatureMap::<i64>::from_fn(4, 4, 1, |_, _, _| 7);
        let padded = zero_insert_pad(&input, &sp);
        assert_eq!((padded.height(), padded.width()), (11, 11));
        // Real pixels at border + s*x = 2 + 2x.
        assert_eq!(padded[(2, 2, 0)], 7);
        assert_eq!(padded[(2, 3, 0)], 0);
        assert_eq!(padded[(8, 8, 0)], 7);
        assert_eq!(padded.count_zeros(), 121 - 16);
    }

    #[test]
    fn scatter_full_geometry_and_crop() {
        let sp = spec(5, 2, 2, 1);
        let input = ramp_input(4, 4, 1);
        let kernel = ramp_kernel(5, 1, 1);
        let full = scatter_full(&input, &kernel, &sp).unwrap();
        assert_eq!(full.height(), 2 * 3 + 5); // 11
        let cropped = deconv_padding_free(&input, &kernel, &sp).unwrap();
        assert_eq!(cropped.height(), 8);
        // Crop offset = padding = 2.
        assert_eq!(cropped[(0, 0, 0)], full[(2, 2, 0)]);
    }

    #[test]
    fn channel_mismatch_errors() {
        let sp = spec(3, 2, 0, 0);
        let input = FeatureMap::<i64>::zeros(2, 2, 2);
        let kernel = Kernel::<i64>::zeros(3, 3, 3, 1);
        assert!(deconv_zero_padding(&input, &kernel, &sp).is_err());
        assert!(deconv_padding_free(&input, &kernel, &sp).is_err());
        assert!(deconv_direct(&input, &kernel, &sp).is_err());
    }

    #[test]
    fn float_path_matches_integer_path() {
        let sp = spec(4, 2, 1, 0);
        let input = ramp_input(3, 3, 2);
        let kernel = ramp_kernel(4, 2, 2);
        let fi: FeatureMap<f64> = input.map(|v| v as f64);
        let fk: Kernel<f64> = kernel.map(|v| v as f64);
        let int_out = deconv_direct(&input, &kernel, &sp).unwrap();
        let float_out = deconv_direct(&fi, &fk, &sp).unwrap();
        assert_eq!(int_out.map(|v| v as f64), float_out);
    }
}
