//! # red-tensor
//!
//! Tensor and deconvolution math substrate for the
//! [RED](https://arxiv.org/abs/1907.02987) ReRAM-based deconvolution
//! accelerator reproduction.
//!
//! This crate is the *golden reference* layer of the simulator stack: it
//! defines the feature-map and kernel tensor types and implements both
//! deconvolution algorithms exactly as the paper describes them
//! (§II-B, Fig. 2):
//!
//! * [`deconv::deconv_zero_padding`] — Algorithm 1: insert `stride-1` zeros
//!   between input pixels, border-pad, then run a stride-1 convolution with
//!   the 180°-rotated kernel.
//! * [`deconv::deconv_padding_free`] — Algorithm 2: scatter each real input
//!   pixel through the kernel, overlap-add, then crop.
//! * [`deconv::deconv_direct`] — the gather-form definition of transposed
//!   convolution, used as the independent oracle for both.
//!
//! All three are proven equivalent by unit and property tests; the
//! architecture engines in `red-arch` are validated against them.
//!
//! The crate also provides the zero-redundancy analytics behind the paper's
//! Fig. 4 ([`redundancy`]), the computation-mode decomposition behind
//! Fig. 6 ([`modes`]), and fixed-point quantization helpers ([`quant`]) used
//! when lowering floating-point layers onto integer crossbar arithmetic.
//!
//! # Example
//!
//! ```
//! use red_tensor::{DeconvSpec, Kernel, FeatureMap};
//! use red_tensor::deconv::{deconv_zero_padding, deconv_padding_free};
//!
//! # fn main() -> Result<(), red_tensor::TensorError> {
//! // SNGAN-style layer: 4x4x3 input, 4x4 kernel, stride 2, padding 1.
//! let spec = DeconvSpec::new(4, 4, 2, 1)?;
//! let input = FeatureMap::<i64>::from_fn(4, 4, 3, |h, w, c| (h + 2 * w + c) as i64);
//! let kernel = Kernel::<i64>::from_fn(4, 4, 3, 2, |i, j, c, m| (i + j + c + m) as i64 - 3);
//!
//! let a = deconv_zero_padding(&input, &kernel, &spec)?;
//! let b = deconv_padding_free(&input, &kernel, &spec)?;
//! assert_eq!(a, b);
//! assert_eq!((a.height(), a.width(), a.channels()), (8, 8, 2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conv;
pub mod deconv;
mod layer;
pub mod modes;
pub mod quant;
pub mod redundancy;
mod scalar;
mod shape;
mod tensor;

pub use layer::{ConvLayerShape, LayerShape};
pub use scalar::Scalar;
pub use shape::{DeconvSpec, OutputGeometry, ShapeError};
pub use tensor::{FeatureMap, Kernel, Tensor3, Tensor4};

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and the deconvolution routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A tensor dimension was zero or inconsistent with the data length.
    Shape(ShapeError),
    /// Input feature-map channel count does not match the kernel channel count.
    ChannelMismatch {
        /// Channels in the input feature map.
        input: usize,
        /// Channels in the kernel.
        kernel: usize,
    },
    /// The requested crop would remove more pixels than the tensor has.
    CropOutOfBounds {
        /// Size of the tensor being cropped.
        have: usize,
        /// Total pixels the crop would remove.
        need: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape(e) => write!(f, "invalid shape: {e}"),
            TensorError::ChannelMismatch { input, kernel } => {
                write!(f, "input has {input} channels but kernel expects {kernel}")
            }
            TensorError::CropOutOfBounds { have, need } => {
                write!(f, "crop of {need} pixels exceeds dimension of {have}")
            }
        }
    }
}

impl Error for TensorError {}

impl From<ShapeError> for TensorError {
    fn from(e: ShapeError) -> Self {
        TensorError::Shape(e)
    }
}
