use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Arithmetic scalar usable as a tensor element.
///
/// The deconvolution reference algorithms are generic over this trait so the
/// same code paths serve exact integer verification (`i32`/`i64`) and analog
/// modelling (`f32`/`f64`).
///
/// # Example
///
/// ```
/// use red_tensor::Scalar;
///
/// fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
///     a.iter().zip(b).fold(T::ZERO, |acc, (&x, &y)| acc + x * y)
/// }
///
/// assert_eq!(dot(&[1i64, 2, 3], &[4, 5, 6]), 32);
/// ```
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// `true` when the value equals [`Scalar::ZERO`] exactly.
    ///
    /// Used by the zero-skipping data flow and redundancy counters; for
    /// floating-point scalars this is an exact (not epsilon) comparison,
    /// because the zeros being skipped are *structural* (inserted by
    /// padding), not numerical noise.
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Lossless-ish conversion to `f64` for error metrics and reporting.
    fn to_f64(self) -> f64;
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    )*};
}

macro_rules! impl_scalar_float {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    )*};
}

impl_scalar_int!(i16, i32, i64, i128);
impl_scalar_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_identities() {
        assert_eq!(i64::ONE, 1);
        assert!(0i32.is_zero());
        assert!(!1i32.is_zero());
    }

    #[test]
    fn float_zero_is_exact() {
        assert!(0.0f64.is_zero());
        assert!(!(f64::EPSILON).is_zero());
        // Negative zero compares equal to zero, which is what structural
        // zero-skipping wants.
        assert!((-0.0f64).is_zero());
    }

    #[test]
    fn to_f64_roundtrip_small_ints() {
        for v in [-5i32, 0, 7, 1 << 20] {
            assert_eq!(v.to_f64(), f64::from(v));
        }
    }
}
