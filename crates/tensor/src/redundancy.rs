//! Zero-redundancy analytics behind the paper's Fig. 4.
//!
//! The zero-padding algorithm turns a deconvolution into a stride-1
//! convolution over a mostly-zero map. The paper quantifies the waste as the
//! *zero redundancy ratio* — "the ratio of redundant computation induced by
//! zero-padding over total computation" — and plots it against stride for an
//! SNGAN-shaped 4×4 input and an FCN-shaped 16×16 input.
//!
//! Reverse-engineering the quoted anchors (86.8 % at stride 2 for the 4×4
//! SNGAN input, 99.8 % at stride 32) shows the paper's metric is the zero
//! fraction of the padded input map with the network's native kernel and
//! padding held fixed while the stride sweeps. [`map_zero_fraction`]
//! reproduces that metric exactly; [`mac_zero_fraction`] additionally counts
//! true per-MAC redundancy (weighting each map position by how many windows
//! visit it), which is the quantity the cost model uses.

use crate::{DeconvSpec, ShapeError};
use serde::{Deserialize, Serialize};

/// One point of a Fig. 4-style redundancy sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedundancyPoint {
    /// The stride this point was evaluated at.
    pub stride: usize,
    /// Paper's metric: zero fraction of the padded input feature map.
    pub map_zero_fraction: f64,
    /// Per-MAC metric: fraction of multiply-accumulates with a zero operand.
    pub mac_zero_fraction: f64,
}

/// Zero fraction of the padded (zero-inserted + border-padded) input map.
///
/// This is the paper's Fig. 4 metric: with the SNGAN convention
/// (`K = 4, p = 1`) and a 4×4 input it yields exactly 86.8 % at stride 2 and
/// 99.8 % at stride 32.
///
/// # Errors
///
/// Returns [`ShapeError`] if the spec parameters are invalid for the given
/// kernel (propagated from [`DeconvSpec`] construction).
pub fn map_zero_fraction(
    input_h: usize,
    input_w: usize,
    spec: &DeconvSpec,
) -> Result<f64, ShapeError> {
    if input_h == 0 {
        return Err(ShapeError::ZeroDimension("input_h"));
    }
    if input_w == 0 {
        return Err(ShapeError::ZeroDimension("input_w"));
    }
    let ph = spec.padded_extent(input_h, spec.kernel_h());
    let pw = spec.padded_extent(input_w, spec.kernel_w());
    let total = (ph * pw) as f64;
    let real = (input_h * input_w) as f64;
    Ok(1.0 - real / total)
}

/// Per-MAC zero-operand fraction of the zero-padding algorithm.
///
/// Counts, over all `OH*OW` stride-1 windows of the padded map, how many of
/// the `KH*KW` taps land on a zero (inserted or border) position. Channels
/// scale numerator and denominator equally, so they cancel.
///
/// # Errors
///
/// Returns [`ShapeError`] for zero input extents.
pub fn mac_zero_fraction(
    input_h: usize,
    input_w: usize,
    spec: &DeconvSpec,
) -> Result<f64, ShapeError> {
    if input_h == 0 {
        return Err(ShapeError::ZeroDimension("input_h"));
    }
    if input_w == 0 {
        return Err(ShapeError::ZeroDimension("input_w"));
    }
    // Separable: a padded position (a, b) is real iff a is real on the H
    // axis and b is real on the W axis, so nnz taps per 2-D window is the
    // product of per-axis counts and we can sum each axis independently.
    let nnz = nonzero_window_tap_pairs(input_h, input_w, spec);
    let total = total_window_tap_pairs(input_h, input_w, spec);
    Ok(1.0 - nnz as f64 / total as f64)
}

/// Exact count of (output window, kernel tap) pairs that land on a real
/// input pixel when the zero-padding algorithm runs — i.e. the non-zero
/// wordline activations (per channel) of the zero-padding design, which by
/// the mode decomposition is also exactly the sub-crossbar row-activation
/// count (per channel) of RED's zero-skipping data flow. The cost model
/// uses this for the `Ewd` term of the paper's Eq. 4.
pub fn nonzero_window_tap_pairs(input_h: usize, input_w: usize, spec: &DeconvSpec) -> u128 {
    let nnz_h = axis_nonzero_taps(input_h, spec.kernel_h(), spec);
    let nnz_w = axis_nonzero_taps(input_w, spec.kernel_w(), spec);
    nnz_h as u128 * nnz_w as u128
}

/// Total (output window, kernel tap) pairs of the zero-padding algorithm:
/// `OH·OW·KH·KW` — the denominator of [`mac_zero_fraction`].
pub fn total_window_tap_pairs(input_h: usize, input_w: usize, spec: &DeconvSpec) -> u128 {
    let geom = spec.output_geometry(input_h, input_w);
    (geom.height * geom.width) as u128 * spec.taps() as u128
}

/// Sum over all 1-D window positions of the number of taps hitting a real
/// (non-inserted, non-border) pixel.
fn axis_nonzero_taps(n: usize, kernel_extent: usize, spec: &DeconvSpec) -> u64 {
    let s = spec.stride();
    let border = spec.border_before(kernel_extent);
    let padded = spec.padded_extent(n, kernel_extent);
    let windows = padded - kernel_extent + 1;
    let mut count = 0u64;
    for u in 0..windows {
        for i in 0..kernel_extent {
            let pos = u + i;
            // Real pixels sit at border + s*x for x in [0, n).
            if pos >= border {
                let off = pos - border;
                if off.is_multiple_of(s) && off / s < n {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Sweeps the redundancy metrics over a list of strides with the kernel and
/// padding held fixed (the paper's Fig. 4 protocol).
///
/// # Errors
///
/// Returns [`ShapeError`] if a stride is incompatible with the kernel
/// geometry (e.g. zero) or extents are zero.
///
/// # Example
///
/// ```
/// use red_tensor::redundancy::sweep_strides;
///
/// # fn main() -> Result<(), red_tensor::ShapeError> {
/// // SNGAN curve of Fig. 4: input 4x4, kernel 4, padding 1.
/// let pts = sweep_strides(4, 4, 4, 1, &[1, 2, 4, 8, 16, 32])?;
/// assert!((pts[1].map_zero_fraction - 0.868).abs() < 0.001);
/// assert!(pts[5].map_zero_fraction > 0.998);
/// # Ok(())
/// # }
/// ```
pub fn sweep_strides(
    input_h: usize,
    input_w: usize,
    kernel: usize,
    padding: usize,
    strides: &[usize],
) -> Result<Vec<RedundancyPoint>, ShapeError> {
    strides
        .iter()
        .map(|&s| {
            let spec = DeconvSpec::new(kernel, kernel, s, padding)?;
            Ok(RedundancyPoint {
                stride: s,
                map_zero_fraction: map_zero_fraction(input_h, input_w, &spec)?,
                mac_zero_fraction: mac_zero_fraction(input_h, input_w, &spec)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deconv::zero_insert_pad;
    use crate::FeatureMap;

    #[test]
    fn fig4_sngan_anchor_stride2_is_86_8_percent() {
        let spec = DeconvSpec::new(4, 4, 2, 1).unwrap();
        let r = map_zero_fraction(4, 4, &spec).unwrap();
        // Padded map is 11x11 = 121 with 16 real pixels: 1 - 16/121.
        assert!((r - (1.0 - 16.0 / 121.0)).abs() < 1e-12);
        assert!((r - 0.868).abs() < 0.001, "paper quotes 86.8%, got {r}");
    }

    #[test]
    fn fig4_sngan_anchor_stride32_is_99_8_percent() {
        let spec = DeconvSpec::new(4, 4, 32, 1).unwrap();
        let r = map_zero_fraction(4, 4, &spec).unwrap();
        assert!((r - 0.998).abs() < 0.0005, "paper quotes 99.8%, got {r}");
    }

    #[test]
    fn map_fraction_matches_counted_zeros_of_actual_padded_map() {
        for (n, k, s, p) in [
            (4usize, 4usize, 2usize, 1usize),
            (16, 16, 8, 0),
            (5, 3, 3, 0),
        ] {
            let spec = DeconvSpec::new(k, k, s, p).unwrap();
            let input = FeatureMap::<i64>::from_fn(n, n, 1, |_, _, _| 1);
            let padded = zero_insert_pad(&input, &spec);
            let counted = padded.count_zeros() as f64 / padded.len() as f64;
            let analytic = map_zero_fraction(n, n, &spec).unwrap();
            assert!(
                (counted - analytic).abs() < 1e-12,
                "n={n} k={k} s={s}: counted {counted} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn mac_fraction_interior_matches_mode_count() {
        // For a large input the border effect vanishes and the nonzero tap
        // fraction approaches ceil(K/s)^2 / K^2.
        let spec = DeconvSpec::new(4, 4, 2, 1).unwrap();
        let r = mac_zero_fraction(128, 128, &spec).unwrap();
        let interior = 1.0 - (2.0 * 2.0) / 16.0; // ceil(4/2)=2 taps per axis
        assert!(
            (r - interior).abs() < 0.02,
            "got {r}, interior limit {interior}"
        );
    }

    #[test]
    fn redundancy_increases_with_stride() {
        let pts = sweep_strides(4, 4, 4, 1, &[1, 2, 4, 8, 16, 32]).unwrap();
        for pair in pts.windows(2) {
            assert!(pair[1].map_zero_fraction > pair[0].map_zero_fraction);
            assert!(pair[1].mac_zero_fraction >= pair[0].mac_zero_fraction);
        }
    }

    #[test]
    fn fcn_native_curve_is_high_at_native_stride() {
        // FCN 16x16 input, kernel 16, padding 0 (voc-fcn8s convention).
        let spec = DeconvSpec::new(16, 16, 8, 0).unwrap();
        let r = map_zero_fraction(16, 16, &spec).unwrap();
        assert!(
            r > 0.98,
            "FCN redundancy at stride 8 should exceed 98%, got {r}"
        );
    }

    #[test]
    fn stride_one_still_has_border_redundancy() {
        let spec = DeconvSpec::new(4, 4, 1, 1).unwrap();
        let r = map_zero_fraction(4, 4, &spec).unwrap();
        // 4x4 real in a 8x8 padded map.
        assert!((r - (1.0 - 16.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_extent_is_error() {
        let spec = DeconvSpec::new(4, 4, 2, 1).unwrap();
        assert!(map_zero_fraction(0, 4, &spec).is_err());
        assert!(mac_zero_fraction(4, 0, &spec).is_err());
    }

    #[test]
    fn pair_counts_are_consistent() {
        // With no cropping (p = 0) each real input pixel is visited by
        // exactly KH*KW stride-1 windows, so nnz pairs == IH*IW*KH*KW.
        for (n, k, s) in [(16usize, 4usize, 2usize), (70, 16, 8), (5, 3, 3)] {
            let spec = DeconvSpec::new(k, k, s, 0).unwrap();
            let nnz = nonzero_window_tap_pairs(n, n, &spec);
            assert_eq!(nnz, (n * n * k * k) as u128, "n={n} k={k} s={s}");
        }
        // Cropping (p > 0) removes edge windows, so the count drops below
        // the identity but never exceeds it.
        for (n, k, s, p) in [(8usize, 5usize, 2usize, 2usize), (4, 4, 2, 1)] {
            let spec = DeconvSpec::new(k, k, s, p).unwrap();
            let nnz = nonzero_window_tap_pairs(n, n, &spec);
            assert!(nnz < (n * n * k * k) as u128);
            assert!(nnz > 0);
            assert!(total_window_tap_pairs(n, n, &spec) >= nnz);
        }
    }
}
