//! The batched executors: the sequential golden path and the pipelined
//! scheduler.
//!
//! Pipelined execution spawns a pool of `std::thread::scope` workers per
//! stage ([`crate::Chip::workers_per_stage`], configurable via
//! [`crate::ChipBuilder::workers`]): the stage's workers pull images from
//! a shared bounded channel, each with its own reusable engine scratch, so
//! a stage drains its queue `workers`-wide while the stages still overlap
//! pipeline-style. Channels are bounded to `queue_depth` packets per
//! worker (default 2: classic double buffering — one feature map being
//! consumed, one staged). A feeder thread streams the batch in at the
//! front; the caller's thread drains outputs at the back and restores
//! input order from the packet indices, so backpressure from the
//! bottleneck stage propagates to the feeder instead of buffering the
//! whole batch.
//!
//! Both executors compute the *same function* — the scheduler only changes
//! when and where stages run; every image is processed independently by a
//! deterministic engine — so pipelined output is bit-exact against
//! sequential output for every worker count (asserted by
//! `tests/runtime_pipeline.rs` and `tests/batched_exec.rs`).
//!
//! Intra-stage sharding is a *host* optimization only: the modeled
//! hardware still has exactly one tile group per stage, so the measured
//! schedule, the reconciliation against `PipelineReport`, and every
//! latency/energy figure are identical for every worker count — only
//! `wall_ns` (host time) shrinks.
//!
//! # What "measured" means here
//!
//! The simulator is functional, not clocked, so hardware time cannot be
//! read off the host clock. Instead, every worker meters the cycles its
//! engine *actually issued* for each image ([`ExecutionStats::cycles`]);
//! the report prices those measured cycles at the stage's cost-model
//! cycle time and composes them into the pipeline schedule the channel
//! topology enforces. Reconciliation with the analytical
//! `PipelineReport` is therefore a real cross-check: if a scheduler bug
//! drops, duplicates or misroutes an image — or an engine issues a cycle
//! count different from the priced geometry — the measured interval
//! diverges from the predicted bottleneck and
//! [`RuntimeReport::reconciles_with`] fails.
//!
//! [`ExecutionStats::cycles`]: red_arch::ExecutionStats

use crate::chip::Chip;
use crate::{ExecMode, RuntimeError, RuntimeReport};
use red_tensor::FeatureMap;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Outputs and statistics of one batch pushed through a [`Chip`].
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Final-stage outputs, in input order.
    pub outputs: Vec<FeatureMap<i64>>,
    /// The measured schedule and host wall-clock of the run.
    pub report: RuntimeReport,
}

/// Reusable working memory for [`Chip::run_batched_with_scratch`]: one
/// engine scratch per stage. Built once per serving context
/// ([`Chip::make_scratch`]) and reused across batches, so a serving loop
/// pushing many small batches through the chip performs no steady-state
/// engine-scratch allocation.
///
/// A scratch is tied to the chip (design and stage lineup) that created
/// it; using it with a different chip panics in the stage engines.
#[derive(Debug)]
pub struct ChipScratch {
    stages: Vec<red_core::LayerScratch>,
}

/// Per-stage execution meter: what one stage actually did during a run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StageMeter {
    /// Images this stage processed.
    pub images: u64,
    /// Vector-operation cycles the engine issued across those images.
    pub cycles: u128,
}

type Packet = (usize, FeatureMap<i64>);

impl Chip {
    /// Runs `inputs` one image at a time through every stage — the
    /// sequential golden path the pipelined scheduler is verified against.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::EmptyBatch`] for an empty batch;
    /// [`RuntimeError::Arch`] when any stage rejects its input.
    pub fn run_sequential(&self, inputs: &[FeatureMap<i64>]) -> Result<BatchRun, RuntimeError> {
        if inputs.is_empty() {
            return Err(RuntimeError::EmptyBatch);
        }
        let started = Instant::now();
        let depth = self.depth();
        let mut meters = vec![StageMeter::default(); depth];
        let mut scratches: Vec<_> = self.stages().iter().map(|s| s.make_scratch()).collect();
        let mut outputs = Vec::with_capacity(inputs.len());
        for input in inputs {
            let mut fm = input.clone();
            for (k, stage) in self.stages().iter().enumerate() {
                let exec = stage.run_with(&fm, &mut scratches[k])?;
                meters[k].images += 1;
                meters[k].cycles += u128::from(exec.stats.cycles);
                fm = if k + 1 < depth {
                    self.activation().apply(&exec.output)
                } else {
                    exec.output
                };
            }
            outputs.push(fm);
        }
        let wall_ns = started.elapsed().as_nanos();
        Ok(BatchRun {
            report: self.measured_report(ExecMode::Sequential, &meters, wall_ns),
            outputs,
        })
    }

    /// Runs `inputs` stage-major: every stage consumes the whole batch
    /// through its engine's batched executor (`CompiledLayer::run_batch`)
    /// before the next stage starts, so large crossbars stream their
    /// weight blocks — or, on noisy configurations, their
    /// effective-current plane blocks — across the batch instead of once
    /// per image. This is the serving path for **noisy** chips: the
    /// phase-major batched analog VMM only engages when a whole batch
    /// reaches the array together.
    ///
    /// Outputs are bit-exact against [`Chip::run_sequential`] (the
    /// engines' batched executors are bit-exact against their per-image
    /// paths), and the modeled hardware schedule is identical — only host
    /// wall time moves.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::EmptyBatch`] for an empty batch;
    /// [`RuntimeError::Arch`] when any stage rejects its input.
    pub fn run_batched(&self, inputs: &[FeatureMap<i64>]) -> Result<BatchRun, RuntimeError> {
        self.run_batched_with_scratch(inputs, &mut self.make_scratch())
    }

    /// Creates working memory for [`Chip::run_batched_with_scratch`] (one
    /// per serving replica or worker).
    pub fn make_scratch(&self) -> ChipScratch {
        ChipScratch {
            stages: self.stages().iter().map(|s| s.make_scratch()).collect(),
        }
    }

    /// [`Chip::run_batched`] with caller-provided working memory: the
    /// per-stage engine scratches are reused across calls instead of
    /// rebuilt per batch, so a serving loop — `red-server` replicas drive
    /// exactly this entry — pays the scratch setup once per replica, not
    /// once per micro-batch. Outputs and the measured schedule are
    /// bit-identical to [`Chip::run_batched`].
    ///
    /// # Errors
    ///
    /// As [`Chip::run_batched`].
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was created by a different chip's
    /// [`Chip::make_scratch`].
    pub fn run_batched_with_scratch(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut ChipScratch,
    ) -> Result<BatchRun, RuntimeError> {
        self.run_batched_with_scratch_at(inputs, scratch, red_arch::ExecPrecision::Full)
    }

    /// [`Chip::run_batched_with_scratch`] at an explicit precision tier:
    /// every stage's crossbars drop the tier's low input bits
    /// ([`red_arch::ExecPrecision`]), trading a bounded output deviation
    /// ([`Chip::truncation_error_bound`]) for proportionally fewer
    /// conversion phases ([`Chip::phase_ratio`]). The measured schedule
    /// is value-independent — engines meter the untruncated schedule —
    /// so the report is identical across tiers and still reconciles
    /// with the analytic pipeline; the serving layer reprices a
    /// degraded batch's fill/steady and energy through
    /// [`Chip::phase_ratio`] and [`Chip::hardware_per_image_at`].
    /// `ExecPrecision::Full` is bit-identical to
    /// [`Chip::run_batched_with_scratch`].
    ///
    /// # Errors
    ///
    /// As [`Chip::run_batched`].
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was created by a different chip's
    /// [`Chip::make_scratch`].
    pub fn run_batched_with_scratch_at(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut ChipScratch,
        prec: red_arch::ExecPrecision,
    ) -> Result<BatchRun, RuntimeError> {
        if inputs.is_empty() {
            return Err(RuntimeError::EmptyBatch);
        }
        assert_eq!(
            scratch.stages.len(),
            self.depth(),
            "ChipScratch stage count must match the chip that uses it"
        );
        let started = Instant::now();
        let depth = self.depth();
        let mut meters = vec![StageMeter::default(); depth];
        let mut fms = inputs.to_vec();
        for (k, (stage, layer_scratch)) in self.stages().iter().zip(&mut scratch.stages).enumerate()
        {
            let execs = stage
                .compiled()
                .run_batch_with_at(&fms, layer_scratch, prec)?;
            meters[k].images += execs.len() as u64;
            meters[k].cycles += execs
                .iter()
                .map(|e| u128::from(e.stats.cycles))
                .sum::<u128>();
            let last = k + 1 == depth;
            fms = execs
                .into_iter()
                .map(|e| {
                    if last {
                        e.output
                    } else {
                        self.activation().apply(&e.output)
                    }
                })
                .collect();
        }
        let wall_ns = started.elapsed().as_nanos();
        Ok(BatchRun {
            report: self.measured_report(ExecMode::Batched, &meters, wall_ns),
            outputs: fms,
        })
    }

    /// Runs `inputs` through the layer pipeline: a pool of
    /// [`Chip::workers_per_stage`] worker threads per stage pulling from a
    /// shared bounded channel, so stage `k` processes up to `workers`
    /// images concurrently while stage `k-1` already processes later
    /// images. Outputs are restored to input order and are bit-exact
    /// against [`Chip::run_sequential`] for every worker count.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::EmptyBatch`] for an empty batch;
    /// [`RuntimeError::Arch`] when any stage rejects its input (the
    /// pipeline drains and the first stage error, in dataflow order, is
    /// returned).
    pub fn run_pipelined(&self, inputs: &[FeatureMap<i64>]) -> Result<BatchRun, RuntimeError> {
        if inputs.is_empty() {
            return Err(RuntimeError::EmptyBatch);
        }
        let started = Instant::now();
        let depth = self.depth();
        let pool = self.workers_per_stage();
        // Double buffering per worker: each worker can have one packet in
        // flight and one staged, whatever the pool size.
        let cap = self.queue_depth() * pool;
        let activation = self.activation();

        let (first_tx, first_rx) = sync_channel::<Packet>(cap);
        let (stage_results, mut collected) = std::thread::scope(|s| {
            // Receivers are shared per stage: workers take turns pulling
            // the next packet (the mutex is only held for the blocking
            // recv, never while an engine runs). The Arc means a stage's
            // input channel disconnects — propagating shutdown upstream —
            // exactly when its last worker exits.
            let mut prev_rx = Arc::new(Mutex::new(first_rx));
            let mut workers = Vec::with_capacity(depth * pool);
            for (k, stage) in self.stages().iter().enumerate() {
                let (tx, rx) = sync_channel::<Packet>(cap);
                let in_rx = std::mem::replace(&mut prev_rx, Arc::new(Mutex::new(rx)));
                let last = k + 1 == depth;
                for _ in 0..pool {
                    let in_rx = Arc::clone(&in_rx);
                    let tx = tx.clone();
                    workers.push((
                        k,
                        s.spawn(move || -> Result<StageMeter, RuntimeError> {
                            let mut scratch = stage.make_scratch();
                            let mut meter = StageMeter::default();
                            loop {
                                let msg =
                                    in_rx.lock().expect("receiver mutex never poisoned").recv();
                                let Ok((idx, fm)) = msg else {
                                    break; // upstream done or hung up
                                };
                                let exec = stage.run_with(&fm, &mut scratch)?;
                                meter.images += 1;
                                meter.cycles += u128::from(exec.stats.cycles);
                                let out = if last {
                                    exec.output
                                } else {
                                    activation.apply(&exec.output)
                                };
                                if tx.send((idx, out)).is_err() {
                                    break; // downstream hung up (error drain)
                                }
                            }
                            Ok(meter)
                        }),
                    ));
                }
                // The loop's `tx` clones live in the workers; dropping the
                // original here lets stage k+1 see disconnect when stage
                // k's last worker exits.
            }
            let sink = prev_rx;
            let feeder = s.spawn(move || {
                for (idx, input) in inputs.iter().enumerate() {
                    if first_tx.send((idx, input.clone())).is_err() {
                        break; // stage 0 hung up (error drain)
                    }
                }
            });
            let sink = sink.lock().expect("sink mutex never poisoned");
            let mut collected: Vec<Packet> = Vec::with_capacity(inputs.len());
            while let Ok(packet) = sink.recv() {
                collected.push(packet);
            }
            feeder.join().expect("feeder thread never panics");
            let results: Vec<(usize, Result<StageMeter, RuntimeError>)> = workers
                .into_iter()
                .map(|(k, w)| (k, w.join().expect("stage worker never panics")))
                .collect();
            (results, collected)
        });
        let wall_ns = started.elapsed().as_nanos();

        // Sum each stage's worker meters; report the first error in
        // dataflow order.
        let mut meters = vec![StageMeter::default(); depth];
        let mut first_err: Option<(usize, RuntimeError)> = None;
        for (k, result) in stage_results {
            match result {
                Ok(m) => {
                    meters[k].images += m.images;
                    meters[k].cycles += m.cycles;
                }
                Err(e) if first_err.as_ref().is_none_or(|(fk, _)| k < *fk) => {
                    first_err = Some((k, e));
                }
                Err(_) => {}
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        collected.sort_by_key(|(idx, _)| *idx);
        let outputs: Vec<FeatureMap<i64>> = collected.into_iter().map(|(_, fm)| fm).collect();
        assert_eq!(
            outputs.len(),
            inputs.len(),
            "every stage succeeded, so every image must emerge"
        );
        Ok(BatchRun {
            report: self.measured_report(ExecMode::Pipelined, &meters, wall_ns),
            outputs,
        })
    }

    /// Prices each stage's *measured* cycles at its cost-model cycle time
    /// and composes the per-image latencies into the schedule the given
    /// execution mode follows, producing the runtime report.
    fn measured_report(
        &self,
        mode: ExecMode,
        meters: &[StageMeter],
        wall_ns: u128,
    ) -> RuntimeReport {
        let lat: Vec<f64> = self
            .stages()
            .iter()
            .zip(meters)
            .map(|(stage, m)| {
                // Measured per-image cycles, priced at the stage's cycle
                // time. Equals the stage's priced latency exactly when the
                // engine issued the cycle count the geometry predicts.
                let per_image = if m.images > 0 {
                    m.cycles as f64 / m.images as f64
                } else {
                    0.0
                };
                per_image * stage.cost().cycle_time_ns()
            })
            .collect();
        let batch = meters.first().map_or(0, |m| m.images) as usize;
        let (fill, steady, makespan) = match mode {
            // Stage-major batching changes host execution order only; the
            // modeled hardware still runs each image through each stage
            // with no overlap, exactly like the sequential golden path.
            ExecMode::Sequential | ExecMode::Batched => {
                let fill: f64 = lat.iter().sum();
                (fill, fill, fill * batch as f64)
            }
            ExecMode::Pipelined => {
                // Event-driven recurrence over the dataflow dependencies
                // the channel topology enforces: stage k starts image n
                // when both the image and the stage are free. With every
                // input ready at t=0 this converges to one output per
                // bottleneck interval — the reconciliation target.
                let mut stage_free = vec![0.0f64; lat.len()];
                let mut out_times = Vec::with_capacity(batch);
                for _ in 0..batch {
                    let mut t = 0.0f64;
                    for (free, l) in stage_free.iter_mut().zip(&lat) {
                        t = t.max(*free) + l;
                        *free = t;
                    }
                    out_times.push(t);
                }
                let fill = out_times.first().copied().unwrap_or(0.0);
                let makespan = out_times.last().copied().unwrap_or(0.0);
                let steady = if batch > 1 {
                    out_times[batch - 1] - out_times[batch - 2]
                } else {
                    lat.iter().copied().fold(0.0, f64::max)
                };
                (fill, steady, makespan)
            }
        };
        let report = RuntimeReport {
            mode,
            design: self.design(),
            batch,
            stages: self.stage_stats(meters, &lat, makespan),
            fill_latency_ns: fill,
            steady_interval_ns: steady,
            makespan_ns: makespan,
            energy_per_image_pj: self.energy_per_image_pj(),
            wall_ns,
        };
        self.emit_run_trace(&report, &lat, meters);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipBuilder;
    use red_arch::Design;
    use red_workloads::{networks, synth};

    fn chip_and_inputs(batch: usize) -> (Chip, Vec<FeatureMap<i64>>) {
        let stack = networks::sngan_generator(64).unwrap();
        let chip = ChipBuilder::new()
            .design(Design::ZeroPadding)
            .compile_seeded(&stack, 5, 11)
            .unwrap();
        let inputs = (0..batch)
            .map(|i| synth::input_dense(&stack.layers[0], 40, 500 + i as u64))
            .collect();
        (chip, inputs)
    }

    #[test]
    fn pipelined_matches_sequential_bit_exactly() {
        let (chip, inputs) = chip_and_inputs(5);
        let seq = chip.run_sequential(&inputs).unwrap();
        let pipe = chip.run_pipelined(&inputs).unwrap();
        assert_eq!(seq.outputs, pipe.outputs);
        assert_eq!(seq.report.mode, ExecMode::Sequential);
        assert_eq!(pipe.report.mode, ExecMode::Pipelined);
    }

    #[test]
    fn batched_matches_sequential_on_ideal_and_noisy_chips() {
        use red_core::xbar::XbarConfig;
        let stack = networks::sngan_generator(64).unwrap();
        let inputs: Vec<_> = (0..4)
            .map(|i| synth::input_dense(&stack.layers[0], 40, 800 + i as u64))
            .collect();
        for cfg in [
            XbarConfig::ideal(),
            XbarConfig::preset("full").expect("known preset"),
        ] {
            for design in Design::paper_lineup() {
                let chip = ChipBuilder::new()
                    .design(design)
                    .xbar_config(cfg)
                    .compile_seeded(&stack, 5, 11)
                    .unwrap();
                let seq = chip.run_sequential(&inputs).unwrap();
                let batched = chip.run_batched(&inputs).unwrap();
                assert_eq!(seq.outputs, batched.outputs, "{design}");
                assert_eq!(batched.report.mode, ExecMode::Batched);
                // Stage-major batching is host-side only: same measured
                // hardware schedule, same reconciliation target.
                assert_eq!(seq.report.fill_latency_ns, batched.report.fill_latency_ns);
                assert_eq!(
                    seq.report.steady_interval_ns,
                    batched.report.steady_interval_ns
                );
                assert!(batched.report.reconciles_with(&chip.pipeline_report()));
            }
        }
    }

    #[test]
    fn chip_clones_share_compiled_stages_and_stay_bit_exact() {
        use red_core::xbar::XbarConfig;
        let stack = networks::sngan_generator(64).unwrap();
        let inputs: Vec<_> = (0..3)
            .map(|i| synth::input_dense(&stack.layers[0], 40, 900 + i as u64))
            .collect();
        for cfg in [
            XbarConfig::ideal(),
            XbarConfig::preset("full").expect("known preset"),
        ] {
            let chip = ChipBuilder::new()
                .design(Design::red(red_arch::RedLayoutPolicy::Auto))
                .xbar_config(cfg)
                .compile_seeded(&stack, 5, 11)
                .unwrap();
            let clone_a = chip.clone();
            let clone_b = chip.clone();
            // Replication shares the programmed crossbars: every stage's
            // compiled engine is the same allocation, not a copy.
            for (s, c) in chip.stages().iter().zip(clone_a.stages()) {
                assert!(std::sync::Arc::ptr_eq(
                    s.shared_compiled(),
                    c.shared_compiled()
                ));
            }
            // Two clones running the batched path independently (each
            // with its own scratch) are bit-exact vs each other and vs
            // the original's sequential golden path.
            let golden = chip.run_sequential(&inputs).unwrap();
            let mut scratch_a = clone_a.make_scratch();
            let mut scratch_b = clone_b.make_scratch();
            let run_a = clone_a
                .run_batched_with_scratch(&inputs, &mut scratch_a)
                .unwrap();
            let run_b = clone_b
                .run_batched_with_scratch(&inputs, &mut scratch_b)
                .unwrap();
            assert_eq!(run_a.outputs, run_b.outputs);
            assert_eq!(golden.outputs, run_a.outputs);
            // Scratch reuse across batches changes nothing.
            let again = clone_a
                .run_batched_with_scratch(&inputs, &mut scratch_a)
                .unwrap();
            assert_eq!(again.outputs, run_a.outputs);
        }
    }

    #[test]
    fn precision_tiers_keep_the_measured_schedule_and_reprice_counters() {
        use red_arch::ExecPrecision;
        let stack = networks::sngan_generator(64).unwrap();
        let chip = ChipBuilder::new().compile_seeded(&stack, 5, 11).unwrap();
        let inputs: Vec<_> = (0..2)
            .map(|i| synth::input_dense(&stack.layers[0], 40, 700 + i as u64))
            .collect();
        let mut scratch = chip.make_scratch();
        let full = chip
            .run_batched_with_scratch_at(&inputs, &mut scratch, ExecPrecision::Full)
            .unwrap();
        // Full tier is the bit-identical golden path.
        assert_eq!(full.outputs, chip.run_batched(&inputs).unwrap().outputs);
        assert_eq!(
            chip.hardware_per_image_at(ExecPrecision::Full),
            chip.hardware_per_image()
        );
        assert_eq!(chip.truncation_error_bound(ExecPrecision::Full), 0.0);
        let mut prev_sweeps = chip.hardware_per_image().bit_phase_sweeps;
        let mut prev_energy = chip.hardware_per_image().energy_fj;
        let mut prev_bound = 0.0;
        for prec in [ExecPrecision::Eco, ExecPrecision::Brownout] {
            let run = chip
                .run_batched_with_scratch_at(&inputs, &mut scratch, prec)
                .unwrap();
            // Engines meter the untruncated schedule, so the measured
            // report is tier-independent and still reconciles.
            assert_eq!(run.report.fill_latency_ns, full.report.fill_latency_ns);
            assert_eq!(
                run.report.steady_interval_ns,
                full.report.steady_interval_ns
            );
            assert!(run.report.reconciles_with(&chip.pipeline_report()));
            // Repriced counters shrink monotonically with depth; issue
            // counts are phase-independent.
            let hw = chip.hardware_per_image_at(prec);
            assert!(hw.bit_phase_sweeps < prev_sweeps);
            assert!(hw.energy_fj < prev_energy);
            assert_eq!(
                hw.crossbar_activations,
                chip.hardware_per_image().crossbar_activations
            );
            prev_sweeps = hw.bit_phase_sweeps;
            prev_energy = hw.energy_fj;
            assert!(chip.phase_ratio(prec) < 1.0);
            let bound = chip.truncation_error_bound(prec);
            assert!(bound > prev_bound);
            prev_bound = bound;
        }
    }

    #[test]
    fn stage_accessor_matches_stage_slice() {
        let (chip, _) = chip_and_inputs(1);
        assert!(chip.stage(chip.depth()).is_none());
        for k in 0..chip.depth() {
            let stage = chip.stage(k).unwrap();
            assert_eq!(stage.layer(), chip.stages()[k].layer());
        }
    }

    #[test]
    fn batched_rejects_empty_batch() {
        let (chip, _) = chip_and_inputs(1);
        assert!(matches!(
            chip.run_batched(&[]),
            Err(RuntimeError::EmptyBatch)
        ));
    }

    #[test]
    fn worker_pools_preserve_outputs_order_meters_and_schedule() {
        let stack = networks::sngan_generator(64).unwrap();
        let inputs: Vec<_> = (0..7)
            .map(|i| synth::input_dense(&stack.layers[0], 40, 600 + i as u64))
            .collect();
        let one = ChipBuilder::new()
            .design(Design::ZeroPadding)
            .workers(1)
            .compile_seeded(&stack, 5, 11)
            .unwrap();
        let wide = ChipBuilder::new()
            .design(Design::ZeroPadding)
            .workers(4)
            .compile_seeded(&stack, 5, 11)
            .unwrap();
        assert_eq!(one.workers_per_stage(), 1);
        assert_eq!(wide.workers_per_stage(), 4);
        let run1 = one.run_pipelined(&inputs).unwrap();
        let run4 = wide.run_pipelined(&inputs).unwrap();
        // Bit-exact outputs in input order, identical modeled schedule:
        // sharding is host-side only.
        assert_eq!(run1.outputs, run4.outputs);
        for (a, b) in run1.report.stages.iter().zip(&run4.report.stages) {
            assert_eq!(a.images, b.images);
            assert_eq!(a.cycles, b.cycles);
        }
        assert_eq!(run1.report.fill_latency_ns, run4.report.fill_latency_ns);
        assert_eq!(
            run1.report.steady_interval_ns,
            run4.report.steady_interval_ns
        );
        assert!(run4.report.reconciles_with(&wide.pipeline_report()));
    }

    #[test]
    fn default_worker_count_is_derived_and_positive() {
        let (chip, _) = chip_and_inputs(1);
        assert!(chip.workers_per_stage() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker count must be positive")]
    fn zero_workers_panics() {
        let _ = ChipBuilder::new().workers(0);
    }

    #[test]
    fn schedules_reconcile_with_the_analytic_pipeline() {
        let (chip, inputs) = chip_and_inputs(6);
        let analytic = chip.pipeline_report();
        let seq = chip.run_sequential(&inputs).unwrap().report;
        let pipe = chip.run_pipelined(&inputs).unwrap().report;
        assert!(seq.reconciles_with(&analytic));
        assert!(pipe.reconciles_with(&analytic));
        // Pipelining helps exactly when the bottleneck is shorter than the
        // whole chain.
        assert!(pipe.steady_interval_ns < seq.steady_interval_ns);
        assert!(pipe.makespan_ns < seq.makespan_ns);
        // The bottleneck stage is the most occupied one.
        let bottleneck = analytic.bottleneck();
        let max_occ = pipe
            .stages
            .iter()
            .map(|s| s.occupancy)
            .fold(0.0f64, f64::max);
        assert_eq!(pipe.stages[bottleneck].occupancy, max_occ);
        assert!(max_occ <= 1.0 + 1e-12);
    }

    #[test]
    fn stage_stats_carry_measured_cycles() {
        let (chip, inputs) = chip_and_inputs(3);
        let pipe = chip.run_pipelined(&inputs).unwrap().report;
        for (stats, stage) in pipe.stages.iter().zip(chip.stages()) {
            assert_eq!(stats.images, 3);
            // Every image issues exactly the priced cycle count, so the
            // measured total is 3x the geometry's cycles.
            assert_eq!(stats.cycles, 3 * u128::from(stage.cost().geometry.cycles));
            assert!(stats.busy_ns > 0.0);
        }
    }

    #[test]
    fn empty_batch_is_rejected() {
        let (chip, _) = chip_and_inputs(1);
        assert!(matches!(
            chip.run_sequential(&[]),
            Err(RuntimeError::EmptyBatch)
        ));
        assert!(matches!(
            chip.run_pipelined(&[]),
            Err(RuntimeError::EmptyBatch)
        ));
    }

    #[test]
    fn wrong_shaped_input_drains_and_reports_the_stage_error() {
        let (chip, mut inputs) = chip_and_inputs(3);
        inputs[1] = FeatureMap::zeros(2, 2, 1);
        let err = chip.run_pipelined(&inputs).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Arch(red_arch::ArchError::InputMismatch { .. })
        ));
        let err = chip.run_sequential(&inputs).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Arch(red_arch::ArchError::InputMismatch { .. })
        ));
    }

    #[test]
    fn single_image_batch_has_fill_equal_makespan() {
        let (chip, inputs) = chip_and_inputs(1);
        let run = chip.run_pipelined(&inputs).unwrap();
        let r = run.report;
        assert_eq!(r.batch, 1);
        assert!((r.makespan_ns - r.fill_latency_ns).abs() < 1e-9);
        assert!(r.reconciles_with(&chip.pipeline_report()));
    }
}
