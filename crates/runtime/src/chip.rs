//! The chip compiler: a whole network mapped onto per-layer tile groups.

use crate::hw::HardwarePerImage;
use crate::{RuntimeError, StageStats};
use red_arch::{
    CostModel, CostReport, Design, Execution, MacroSpec, PipelineReport, RedLayoutPolicy,
};
use red_core::xbar::XbarConfig;
use red_core::{Accelerator, CompiledLayer};
use red_tensor::{FeatureMap, Kernel, LayerShape};
use red_workloads::networks::DeconvStack;
use red_workloads::synth;
use serde::Serialize;
use std::sync::Arc;

/// The inter-stage activation function applied to every feature map that
/// crosses a stage boundary (never to the final stage's output).
///
/// Functional engines compute in exact `i64`, so chained deconvolutions
/// would overflow after a few stages without a range-limiting
/// nonlinearity. [`Activation::RangeFold`] is the repository's standard
/// stand-in (the examples use the same fold): it keeps activations
/// strictly positive and within crossbar input range while remaining
/// bit-exact and deterministic — which is all the runtime needs, since
/// sequential and pipelined execution share the same activation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Activation {
    /// Pass values through unchanged (single-layer chips, or externally
    /// bounded inputs).
    Identity,
    /// `(v % modulus).abs() + 1` — strictly positive, bounded by
    /// `modulus`.
    RangeFold {
        /// The fold bound; must be positive.
        modulus: i64,
    },
}

impl Activation {
    /// The default inter-stage fold used across the repository's
    /// end-to-end examples (modulus 89).
    pub fn default_fold() -> Self {
        Activation::RangeFold { modulus: 89 }
    }

    /// Applies the activation to a feature map.
    ///
    /// # Panics
    ///
    /// Panics if a [`Activation::RangeFold`] modulus is not positive.
    pub fn apply(&self, fm: &FeatureMap<i64>) -> FeatureMap<i64> {
        match self {
            Activation::Identity => fm.clone(),
            Activation::RangeFold { modulus } => {
                assert!(*modulus > 0, "RangeFold modulus must be positive");
                fm.map(|v| (v % modulus).abs() + 1)
            }
        }
    }
}

/// The crossbar tiles allocated to one pipeline stage.
///
/// `instances` are the design's logical sub-crossbars (RED's `KH·KW`
/// pixel-wise arrays, one monolithic array for the baselines); `macros`
/// is the physical tile count after splitting every instance into
/// [`MacroSpec`]-bounded macros, the same split `CostModel::evaluate_tiled`
/// prices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TileGroup {
    /// Pipeline stage (layer index in dataflow order).
    pub stage: usize,
    /// Logical array instances of the design.
    pub instances: usize,
    /// Wordlines per logical instance.
    pub rows: usize,
    /// Physical (bit-sliced) columns per logical instance.
    pub phys_cols: usize,
    /// Physical macros after the [`MacroSpec`] split.
    pub macros: usize,
    /// Total stage area (arrays + periphery), in µm².
    pub area_um2: f64,
}

impl TileGroup {
    fn derive(stage: usize, cost: &CostReport, mac: MacroSpec) -> Self {
        let g = &cost.geometry;
        let rows = g.array.rows;
        let phys_cols = g.phys_cols_per_instance();
        let row_tiles = rows.div_ceil(mac.max_rows);
        let col_tiles = phys_cols.div_ceil(mac.max_phys_cols);
        TileGroup {
            stage,
            instances: g.array.instances,
            rows,
            phys_cols,
            macros: g.array.instances * row_tiles * col_tiles,
            area_um2: cost.total_area_um2(),
        }
    }
}

/// The chip's resident floorplan: every stage's tile group coexists.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Floorplan {
    /// The macro bound the floorplan was split against.
    pub macro_spec: MacroSpec,
    /// Per-stage tile groups, in dataflow order.
    pub tiles: Vec<TileGroup>,
}

impl Floorplan {
    /// Total chip area (all resident stages), in µm².
    pub fn total_area_um2(&self) -> f64 {
        self.tiles.iter().map(|t| t.area_um2).sum()
    }

    /// Total physical macro count across all stages.
    pub fn total_macros(&self) -> usize {
        self.tiles.iter().map(|t| t.macros).sum()
    }
}

/// One pipeline stage: a layer compiled onto its tile group.
///
/// The compiled engine (crossbar weights, effective-current planes,
/// gather plans) is held behind an [`Arc`], so cloning a stage — and
/// therefore cloning a whole [`Chip`] for fleet replication — shares the
/// immutable compiled state instead of re-copying the programmed arrays.
/// Mutable execution state lives entirely in the caller-provided scratch
/// ([`Stage::run_with`]), which every clone creates for itself.
#[derive(Debug, Clone)]
pub struct Stage {
    compiled: Arc<CompiledLayer>,
    tiles: TileGroup,
}

impl Stage {
    /// The compiled engine executing this stage.
    pub fn compiled(&self) -> &CompiledLayer {
        self.compiled.as_ref()
    }

    /// The shared handle to the compiled engine — what [`Chip`] clones
    /// actually share. Two clones of the same chip return pointers to the
    /// same allocation ([`Arc::ptr_eq`]), which is how fleet replication
    /// keeps N replicas at one copy of the programmed crossbars.
    pub fn shared_compiled(&self) -> &Arc<CompiledLayer> {
        &self.compiled
    }

    /// Creates working memory for [`Stage::run_with`] (one per worker).
    pub(crate) fn make_scratch(&self) -> red_core::LayerScratch {
        self.compiled.make_scratch()
    }

    /// The analytical cost report of this stage.
    pub fn cost(&self) -> &CostReport {
        self.compiled.cost()
    }

    /// The tile group allocated to this stage.
    pub fn tiles(&self) -> &TileGroup {
        &self.tiles
    }

    /// The layer shape this stage executes.
    pub fn layer(&self) -> &LayerShape {
        self.compiled.layer()
    }

    pub(crate) fn run_with(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut red_core::LayerScratch,
    ) -> Result<Execution, RuntimeError> {
        Ok(self.compiled.run_with(input, scratch)?)
    }
}

/// A compiled chip: one design, one network, every layer resident in its
/// own tile group. Build with [`Chip::builder`].
///
/// Cloning a chip is cheap: every stage's compiled engine sits behind an
/// [`Arc`] ([`Stage::shared_compiled`]), so a clone shares the programmed
/// crossbars and only copies the per-stage bookkeeping. `red-server`'s
/// `ChipFleet` replicates a chip this way — N serving replicas, one copy
/// of the weights — and clones stay bit-exact on every execution path.
#[derive(Debug, Clone)]
pub struct Chip {
    name: String,
    design: Design,
    activation: Activation,
    queue_depth: usize,
    workers: Option<usize>,
    macro_spec: MacroSpec,
    stages: Vec<Stage>,
    input_bits: u32,
    hw_per_image: HardwarePerImage,
    telemetry: red_telemetry::Telemetry,
    trace_pid: u32,
}

impl Chip {
    /// Starts building a chip (defaults: RED design with the paper's
    /// layout policy, ideal crossbars, paper cost model, the repository's
    /// standard inter-stage fold, 512×512 macros, double-buffered queues).
    pub fn builder() -> ChipBuilder {
        ChipBuilder::new()
    }

    /// The network name this chip was compiled from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The design every stage runs on.
    pub fn design(&self) -> Design {
        self.design
    }

    /// The inter-stage activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Bounded inter-stage queue capacity (2 = double buffering).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Host worker threads each pipeline stage shards its images across
    /// during [`Chip::run_pipelined`].
    ///
    /// Explicitly configured via [`ChipBuilder::workers`], or derived from
    /// [`std::thread::available_parallelism`] — roughly one hardware
    /// thread per stage worker after giving every stage one, capped at 8
    /// per stage. Always at least 1.
    ///
    /// This is purely a *host* throughput knob: the modeled hardware
    /// schedule (one tile group per stage) and the computed outputs are
    /// identical for every worker count.
    pub fn workers_per_stage(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            (threads / self.depth().max(1)).clamp(1, 8)
        })
    }

    /// Number of pipeline stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// The pipeline stages, in dataflow order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// One pipeline stage by index, or `None` past the last stage.
    pub fn stage(&self, index: usize) -> Option<&Stage> {
        self.stages.get(index)
    }

    /// The `(height, width, channels)` shape this chip's first stage
    /// expects. The serving layer validates request inputs against it
    /// before they enter the queue.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        let layer0 = self.stages[0].layer();
        (layer0.input_h(), layer0.input_w(), layer0.channels())
    }

    /// The chip floorplan (per-stage tile groups and totals).
    pub fn floorplan(&self) -> Floorplan {
        Floorplan {
            macro_spec: self.macro_spec,
            tiles: self.stages.iter().map(|s| s.tiles).collect(),
        }
    }

    /// The analytical pipeline report for this chip, assembled from the
    /// per-stage cost reports the compiler already priced. The runtime's
    /// measured schedule must reconcile with it
    /// ([`crate::RuntimeReport::reconciles_with`]).
    pub fn pipeline_report(&self) -> PipelineReport {
        PipelineReport::from_stages(
            self.design,
            self.stages.iter().map(|s| s.cost().clone()).collect(),
        )
        .expect("a compiled chip has at least one stage")
    }

    /// Modeled energy to push one image through every stage, in pJ.
    pub fn energy_per_image_pj(&self) -> f64 {
        self.stages.iter().map(|s| s.cost().total_energy_pj()).sum()
    }

    /// Modeled hardware activity counters for one image through every
    /// stage (exact integers; see [`HardwarePerImage`]). The serving
    /// layer charges `hw × batch` per dispatched batch, and the
    /// telemetry tests assert those per-request charges sum exactly to
    /// the aggregate report figures.
    pub fn hardware_per_image(&self) -> HardwarePerImage {
        self.hw_per_image
    }

    /// [`Chip::hardware_per_image`] at an explicit precision tier: a
    /// degraded tier streams fewer input magnitude bits, so the
    /// per-phase counters (bit-phase sweeps, plane row adds, ADC
    /// conversions) shrink to the live phase count and the phase-gated
    /// energy share reprices proportionally while activations and the
    /// static energy share stay put. `ExecPrecision::Full` is
    /// bit-identical to [`Chip::hardware_per_image`].
    pub fn hardware_per_image_at(&self, prec: red_arch::ExecPrecision) -> HardwarePerImage {
        if prec == red_arch::ExecPrecision::Full {
            return self.hw_per_image;
        }
        HardwarePerImage::derive_tier(
            self.stages.iter().map(|s| s.cost()),
            self.full_mag_bits(),
            self.live_mag_bits(prec),
        )
    }

    /// Input magnitude bits of the chip's crossbar configuration
    /// (`input_bits − 1`, at least 1) — the full-precision bit-serial
    /// phase count is twice this.
    pub fn full_mag_bits(&self) -> u32 {
        self.input_bits.saturating_sub(1).max(1)
    }

    /// Input magnitude bits that actually stream at `prec`: the full
    /// count minus the tier's dropped bits, clamped so at least one bit
    /// stays live (matching `CrossbarArray`'s clamp).
    pub fn live_mag_bits(&self, prec: red_arch::ExecPrecision) -> u32 {
        let mag = self.full_mag_bits();
        mag - prec.dropped_bits().min(mag - 1)
    }

    /// Fraction of the full-precision conversion-phase count a tier
    /// actually sweeps (`live_mag_bits / full_mag_bits`; 1.0 for
    /// `Full`). The serving scheduler prices a degraded batch's fill
    /// and steady interval at this ratio — phase count is what the
    /// bit-serial pipeline's service time is linear in.
    pub fn phase_ratio(&self, prec: red_arch::ExecPrecision) -> f64 {
        f64::from(self.live_mag_bits(prec)) / f64::from(self.full_mag_bits())
    }

    /// Worst-case absolute deviation any single stage's output can
    /// show at `prec` relative to the same stage input at full
    /// precision, maximised over the chip's stages
    /// ([`red_core::CompiledLayer::truncation_error_bound`]). For a
    /// single-stage chip this bounds the served output exactly; across
    /// stages the inter-stage activation re-maps values, so this
    /// per-stage figure is what the serving layer advertises per
    /// degraded batch. Zero for `Full`.
    pub fn truncation_error_bound(&self, prec: red_arch::ExecPrecision) -> f64 {
        self.stages
            .iter()
            .map(|s| s.compiled().truncation_error_bound(prec))
            .fold(0.0, f64::max)
    }

    /// Per-stage priced latencies in ns, in dataflow order — the
    /// analytic profile the tracer uses to draw per-stage execute spans
    /// without replaying the schedule.
    pub fn stage_latency_profile_ns(&self) -> Vec<f64> {
        self.stages
            .iter()
            .map(|s| s.cost().total_latency_ns())
            .collect()
    }

    /// Attaches a telemetry handle: subsequent `run_*` calls record a
    /// virtual-clock execution trace (one `run` span plus per-stage
    /// spans, plus hardware counters) into stream `pid` under Perfetto
    /// process `pid`. The emission happens once per run on the thread
    /// that assembles the report, so the recorded event sequence is a
    /// deterministic function of the run sequence — do not attach a
    /// handle to chips serving as fleet replicas (the server's scheduler
    /// records its own deterministic spans instead).
    pub fn set_telemetry(&mut self, telemetry: red_telemetry::Telemetry, pid: u32) {
        self.telemetry = telemetry;
        self.trace_pid = pid;
        if self.telemetry.is_enabled() {
            self.telemetry
                .name_process(self.trace_pid, &format!("chip:{}", self.name));
            for (k, stage) in self.stages.iter().enumerate() {
                let l = stage.layer();
                self.telemetry.name_thread(
                    self.trace_pid,
                    1_000 + k as u32,
                    &format!(
                        "stage{k}: {}x{}x{}->{}",
                        l.input_h(),
                        l.input_w(),
                        l.channels(),
                        l.filters()
                    ),
                );
            }
        }
    }

    /// The telemetry handle attached via [`Chip::set_telemetry`]
    /// (disabled by default).
    pub fn telemetry(&self) -> &red_telemetry::Telemetry {
        &self.telemetry
    }

    /// Records one run's execution trace (see [`Chip::set_telemetry`]):
    /// a `run` span on tid 0 plus one analytic per-stage span per
    /// pipeline stage, all on the virtual clock with `t = 0` at batch
    /// start, plus the run's hardware counters. No-op (one branch) when
    /// telemetry is disabled.
    pub(crate) fn emit_run_trace(
        &self,
        report: &crate::RuntimeReport,
        lat: &[f64],
        meters: &[crate::schedule::StageMeter],
    ) {
        use red_telemetry::{ArgValue, Phase, TraceEvent};
        if !self.telemetry.is_enabled() {
            return;
        }
        let pid = self.trace_pid;
        let stream = pid as usize;
        let b = report.batch as u64;
        let mode = match report.mode {
            crate::ExecMode::Sequential => "sequential",
            crate::ExecMode::Batched => "batched",
            crate::ExecMode::Pipelined => "pipelined",
        };
        let hw = self.hw_per_image.scaled(b);
        self.telemetry.record(
            stream,
            TraceEvent::new("run", "chip", Phase::Complete, 0)
                .track(pid, 0)
                .dur(report.makespan_ns.round() as u64)
                .arg("images", ArgValue::U64(b))
                .arg("mode", ArgValue::Str(mode))
                .arg("xbar_activations", ArgValue::U64(hw.crossbar_activations))
                .arg("adc_quantizations", ArgValue::U64(hw.adc_quantizations))
                .arg("energy_fj", ArgValue::U64(hw.energy_fj)),
        );
        // Analytic per-stage windows from the measured latencies: first
        // start to last end of each stage under the mode's schedule.
        let pipelined = report.mode == crate::ExecMode::Pipelined;
        let fill: f64 = lat.iter().sum();
        let mut prefix = 0.0f64;
        let mut runmax = 0.0f64;
        for (k, (&l, meter)) in lat.iter().zip(meters).enumerate() {
            runmax = runmax.max(l);
            let begin = prefix;
            prefix += l;
            let end = if pipelined {
                prefix + (b.saturating_sub(1)) as f64 * runmax
            } else {
                (b.saturating_sub(1)) as f64 * fill + prefix
            };
            let ts = begin.round() as u64;
            self.telemetry.record(
                stream,
                TraceEvent::new("stage", "chip", Phase::Complete, ts)
                    .track(pid, 1_000 + k as u32)
                    .dur((end.round() as u64).saturating_sub(ts))
                    .arg("stage", ArgValue::U64(k as u64))
                    .arg("images", ArgValue::U64(meter.images))
                    .arg(
                        "cycles",
                        ArgValue::U64(u64::try_from(meter.cycles).unwrap_or(u64::MAX)),
                    ),
            );
        }
        let labels: [(&'static str, &str); 1] = [("chip", &self.name)];
        self.telemetry
            .counter(
                "red_xbar_activations_total",
                "Crossbar vector-operation activations issued",
                &labels,
            )
            .add(hw.crossbar_activations);
        self.telemetry
            .counter(
                "red_bit_phase_sweeps_total",
                "Bit-serial input phases swept across activations",
                &labels,
            )
            .add(hw.bit_phase_sweeps);
        self.telemetry
            .counter(
                "red_plane_row_adds_total",
                "Non-zero wordline row-current adds",
                &labels,
            )
            .add(hw.plane_row_adds);
        self.telemetry
            .counter(
                "red_adc_quantizations_total",
                "ADC integrate-and-fire conversions",
                &labels,
            )
            .add(hw.adc_quantizations);
        self.telemetry
            .counter(
                "red_energy_femtojoules_total",
                "Modeled execution energy in femtojoules",
                &labels,
            )
            .add(hw.energy_fj);
        self.telemetry
            .counter("red_images_total", "Images executed", &labels)
            .add(b);
    }

    pub(crate) fn stage_stats(
        &self,
        meters: &[crate::schedule::StageMeter],
        measured_latency_ns: &[f64],
        makespan_ns: f64,
    ) -> Vec<StageStats> {
        meters
            .iter()
            .zip(measured_latency_ns)
            .enumerate()
            .map(|(stage, (meter, &latency_ns))| {
                let busy_ns = latency_ns * meter.images as f64;
                StageStats {
                    stage,
                    latency_ns,
                    images: meter.images,
                    cycles: meter.cycles,
                    busy_ns,
                    occupancy: if makespan_ns > 0.0 {
                        busy_ns / makespan_ns
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

/// Builder/compiler for [`Chip`].
#[derive(Debug, Clone)]
pub struct ChipBuilder {
    design: Design,
    xbar: XbarConfig,
    model: CostModel,
    activation: Activation,
    macro_spec: MacroSpec,
    queue_depth: usize,
    workers: Option<usize>,
}

impl ChipBuilder {
    /// Creates the builder with paper defaults.
    pub fn new() -> Self {
        Self {
            design: Design::red(RedLayoutPolicy::Auto),
            xbar: XbarConfig::ideal(),
            model: CostModel::paper_default(),
            activation: Activation::default_fold(),
            macro_spec: MacroSpec::m512(),
            queue_depth: 2,
            workers: None,
        }
    }

    /// Selects the design all stages run on.
    pub fn design(mut self, design: Design) -> Self {
        self.design = design;
        self
    }

    /// Sets the functional crossbar configuration.
    pub fn xbar_config(mut self, cfg: XbarConfig) -> Self {
        self.xbar = cfg;
        self
    }

    /// Sets the analytical cost model.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Copies design, crossbar configuration and cost model from an
    /// already-configured [`Accelerator`].
    pub fn accelerator(mut self, acc: &Accelerator) -> Self {
        self.design = acc.design();
        self.xbar = *acc.xbar_config();
        self.model = *acc.cost_model();
        self
    }

    /// Sets the inter-stage activation.
    pub fn activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// Sets the macro bound for the physical tile split.
    pub fn macro_spec(mut self, mac: MacroSpec) -> Self {
        self.macro_spec = mac;
        self
    }

    /// Sets the bounded inter-stage queue capacity (default 2: double
    /// buffering — one feature map in flight, one staged).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (a rendezvous channel would serialize the
    /// pipeline).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        self.queue_depth = depth;
        self
    }

    /// Sets the host worker-thread count each pipeline stage shards its
    /// images across during [`Chip::run_pipelined`] (default: derived
    /// from [`std::thread::available_parallelism`], see
    /// [`Chip::workers_per_stage`]). `1` reproduces the strictly
    /// one-thread-per-stage pipeline; outputs are bit-identical for every
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        self.workers = Some(workers);
        self
    }

    /// Compiles `stack` with one kernel per layer.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Arch`]`(ArchError::EmptyPipeline)` for an empty
    ///   stack;
    /// * [`RuntimeError::Shape`] when the stack's seams do not chain;
    /// * [`RuntimeError::KernelCount`] when `kernels.len()` differs from
    ///   the stack depth;
    /// * [`RuntimeError::Arch`] for kernel/layer mismatches or programming
    ///   failures in any stage.
    pub fn compile(
        &self,
        stack: &DeconvStack,
        kernels: &[Kernel<i64>],
    ) -> Result<Chip, RuntimeError> {
        if stack.layers.is_empty() {
            return Err(red_arch::ArchError::EmptyPipeline.into());
        }
        stack.validate()?;
        if kernels.len() != stack.layers.len() {
            return Err(RuntimeError::KernelCount {
                expected: stack.layers.len(),
                actual: kernels.len(),
            });
        }
        let acc = Accelerator::builder()
            .design(self.design)
            .xbar_config(self.xbar)
            .cost_model(self.model)
            .build();
        let stages = stack
            .layers
            .iter()
            .zip(kernels)
            .enumerate()
            .map(|(i, (layer, kernel))| {
                let compiled = acc.compile(layer, kernel)?;
                let tiles = TileGroup::derive(i, compiled.cost(), self.macro_spec);
                Ok(Stage {
                    compiled: Arc::new(compiled),
                    tiles,
                })
            })
            .collect::<Result<Vec<_>, RuntimeError>>()?;
        let hw_per_image =
            HardwarePerImage::derive(stages.iter().map(|s| s.cost()), self.xbar.input_bits);
        Ok(Chip {
            name: stack.name.to_string(),
            design: self.design,
            activation: self.activation,
            queue_depth: self.queue_depth,
            workers: self.workers,
            macro_spec: self.macro_spec,
            stages,
            input_bits: self.xbar.input_bits,
            hw_per_image,
            telemetry: red_telemetry::Telemetry::disabled(),
            trace_pid: 0,
        })
    }

    /// Compiles `stack` with seeded synthetic kernels (`synth::kernel`
    /// with weights in `[-bound, bound]`, one derived seed per layer).
    ///
    /// # Errors
    ///
    /// As [`compile`](ChipBuilder::compile).
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 0` (propagated from `synth::kernel`).
    pub fn compile_seeded(
        &self,
        stack: &DeconvStack,
        bound: i64,
        seed: u64,
    ) -> Result<Chip, RuntimeError> {
        let kernels: Vec<_> = stack
            .layers
            .iter()
            .enumerate()
            .map(|(i, layer)| synth::kernel(layer, bound, seed.wrapping_add(i as u64)))
            .collect();
        self.compile(stack, &kernels)
    }
}

impl Default for ChipBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::ShapeError;
    use red_workloads::networks;

    fn small_stack() -> DeconvStack {
        networks::sngan_generator(64).unwrap() // 8/4/2-channel stages
    }

    #[test]
    fn compiler_allocates_one_tile_group_per_layer() {
        let stack = small_stack();
        let chip = ChipBuilder::new().compile_seeded(&stack, 5, 7).unwrap();
        assert_eq!(chip.depth(), stack.layers.len());
        assert_eq!(chip.name(), stack.name);
        let plan = chip.floorplan();
        assert_eq!(plan.tiles.len(), chip.depth());
        for (i, tile) in plan.tiles.iter().enumerate() {
            assert_eq!(tile.stage, i);
            assert!(tile.instances > 0 && tile.macros >= tile.instances);
            assert!(tile.area_um2 > 0.0);
        }
        let area: f64 = chip
            .stages()
            .iter()
            .map(|s| s.cost().total_area_um2())
            .sum();
        assert!((plan.total_area_um2() - area).abs() < 1e-9);
        // The analytical pipeline report is assembled from the same stages.
        let report = chip.pipeline_report();
        assert_eq!(report.depth(), chip.depth());
        assert_eq!(report.total_area_um2(), area);
        assert_eq!(chip.energy_per_image_pj(), report.energy_per_input_pj());
    }

    #[test]
    fn small_macros_split_into_more_tiles() {
        let stack = small_stack();
        let big = ChipBuilder::new()
            .macro_spec(MacroSpec::new(4096, 4096))
            .compile_seeded(&stack, 5, 7)
            .unwrap();
        let small = ChipBuilder::new()
            .macro_spec(MacroSpec::new(4, 4))
            .compile_seeded(&stack, 5, 7)
            .unwrap();
        assert!(small.floorplan().total_macros() > big.floorplan().total_macros());
        // Logical instances are macro-independent.
        assert_eq!(
            big.floorplan().tiles[0].instances,
            small.floorplan().tiles[0].instances
        );
    }

    #[test]
    fn compile_rejects_bad_stacks_and_kernel_counts() {
        let builder = ChipBuilder::new();
        let empty = DeconvStack {
            name: "empty",
            layers: Vec::new(),
        };
        assert!(matches!(
            builder.compile(&empty, &[]),
            Err(RuntimeError::Arch(red_arch::ArchError::EmptyPipeline))
        ));

        let mut broken = small_stack();
        broken.layers.swap(0, 1);
        assert!(matches!(
            builder.compile_seeded(&broken, 5, 7),
            Err(RuntimeError::Shape(ShapeError::ChainMismatch { .. }))
        ));

        let stack = small_stack();
        let one_kernel = vec![synth::kernel(&stack.layers[0], 5, 7)];
        assert!(matches!(
            builder.compile(&stack, &one_kernel),
            Err(RuntimeError::KernelCount {
                expected: 3,
                actual: 1
            })
        ));
    }

    #[test]
    fn accelerator_handoff_copies_configuration() {
        let acc = Accelerator::builder().design(Design::PaddingFree).build();
        let chip = ChipBuilder::new()
            .accelerator(&acc)
            .compile_seeded(&small_stack(), 5, 7)
            .unwrap();
        assert_eq!(chip.design(), Design::PaddingFree);
        for stage in chip.stages() {
            assert_eq!(stage.cost().design, Design::PaddingFree);
            assert_eq!(stage.compiled().design(), Design::PaddingFree);
        }
    }

    #[test]
    fn activation_folds_into_range() {
        let fold = Activation::default_fold();
        let fm = FeatureMap::from_fn(2, 2, 1, |h, w, _| (h as i64 - w as i64) * 1_000_003);
        let out = fold.apply(&fm);
        assert!(out.as_slice().iter().all(|&v| (1..=89).contains(&v)));
        let id = Activation::Identity.apply(&fm);
        assert_eq!(id, fm);
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_panics() {
        let _ = ChipBuilder::new().queue_depth(0);
    }
}
