//! # red-runtime
//!
//! Chip-level execution runtime for the RED reproduction: where
//! `red-core::Accelerator` runs one deconvolution layer on one accelerator
//! instance, this crate turns a whole network into a *chip* and serves
//! batched traffic through it the way PipeLayer-class ReRAM systems do —
//! every layer's weights resident in their own crossbar tile group, feature
//! maps streaming through the layers as a pipeline.
//!
//! The subsystem has three parts:
//!
//! * the **chip compiler** ([`ChipBuilder`]) takes a
//!   `red_workloads::DeconvStack`, validates its seams, allocates one
//!   [`TileGroup`] per layer (geometry and area from the existing
//!   `CostModel`, physical macro count from [`MacroSpec`]), and programs
//!   each group with a compiled engine via `red_core::Accelerator`;
//! * the **pipelined scheduler** ([`Chip::run_pipelined`]) runs batched
//!   inference on `std::thread::scope` workers — a pool per stage
//!   ([`ChipBuilder::workers`], defaulting to a share of
//!   `std::thread::available_parallelism`) — connected by bounded,
//!   double-buffered channels, so layer `k` processes several images
//!   concurrently while layer `k-1` already processes later ones;
//! * the **runtime stats layer** ([`RuntimeReport`]) models fill latency,
//!   steady-state interval, throughput, per-stage occupancy and energy from
//!   the per-stage cost reports, and must reconcile with
//!   `red_arch::PipelineReport`'s analytical bottleneck prediction
//!   ([`RuntimeReport::reconciles_with`], asserted in the repository's
//!   integration tests).
//!
//! Pipelined execution is **bit-exact** against sequential
//! single-accelerator execution of the same stack
//! ([`Chip::run_sequential`]): the scheduler changes *when* stages run,
//! never *what* they compute.
//!
//! # Example
//!
//! ```
//! use red_runtime::{Chip, ChipBuilder};
//! use red_core::prelude::*;
//! use red_core::workloads::networks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stack = networks::dcgan_generator(64)?; // channel-scaled for speed
//! let chip = ChipBuilder::new()
//!     .design(Design::red(RedLayoutPolicy::Auto))
//!     .compile_seeded(&stack, 5, 42)?;
//! let inputs: Vec<_> = (0..4)
//!     .map(|i| synth::input_dense(&stack.layers[0], 64, 100 + i))
//!     .collect();
//! let run = chip.run_pipelined(&inputs)?;
//! assert_eq!(run.outputs.len(), 4);
//! // The modeled schedule reconciles with the analytical pipeline report.
//! assert!(run.report.reconciles_with(&chip.pipeline_report()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chip;
mod error;
mod hw;
mod report;
mod schedule;

pub use chip::{Activation, Chip, ChipBuilder, Floorplan, Stage, TileGroup};
pub use error::RuntimeError;
pub use hw::HardwarePerImage;
pub use report::{ExecMode, RuntimeReport, StageStats};
pub use schedule::{BatchRun, ChipScratch};

// The tiling bound reused for the chip floorplan.
pub use red_arch::MacroSpec;

/// Re-export: the execution precision tiers brownout serving steps
/// between (see `red-xbar`).
pub use red_arch::ExecPrecision;
