//! The runtime stats layer: modeled schedules that must reconcile with
//! the analytical `PipelineReport`.

use red_arch::{Design, PipelineReport};
use serde::Serialize;

/// How a batch was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ExecMode {
    /// One image at a time through every stage (the golden path).
    Sequential,
    /// Stage-major over the whole batch: each stage consumes every image
    /// through its engine's batched executor before the next stage
    /// starts. Same modeled hardware schedule as [`ExecMode::Sequential`]
    /// (one tile group per stage, no overlap) — only the host-side
    /// execution order, and therefore weight/plane cache reuse, differs.
    Batched,
    /// Layer-parallel pipelining with bounded inter-stage queues.
    Pipelined,
}

/// Per-stage scheduling statistics for one batch run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StageStats {
    /// Pipeline stage index.
    pub stage: usize,
    /// Measured per-image stage latency (issued cycles priced at the
    /// stage's cycle time), in ns.
    pub latency_ns: f64,
    /// Images this stage processed.
    pub images: u64,
    /// Vector-operation cycles the stage's engine actually issued across
    /// those images.
    pub cycles: u128,
    /// Measured busy time (`images * latency`), in ns.
    pub busy_ns: f64,
    /// Fraction of the batch makespan this stage spent busy. The
    /// bottleneck stage approaches 1.0 as the batch grows.
    pub occupancy: f64,
}

/// Measured schedule of one batch through the chip, plus the host
/// wall-clock the simulator itself took.
///
/// Latencies are *measured* hardware time: the cycles each stage's
/// engine actually issued during this run, priced at the stage's
/// cost-model cycle time and composed by the execution mode's dependency
/// structure (see the scheduling module docs). `wall_ns` is the host
/// simulator time, reported so scheduler overhead stays visible to the
/// criterion benches.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuntimeReport {
    /// How the batch was executed.
    pub mode: ExecMode,
    /// The design all stages run on.
    pub design: Design,
    /// Number of images pushed through the chip.
    pub batch: usize,
    /// Per-stage scheduling statistics.
    pub stages: Vec<StageStats>,
    /// Measured latency until the first image's final output, in ns.
    pub fill_latency_ns: f64,
    /// Measured steady-state interval between consecutive outputs, in ns.
    pub steady_interval_ns: f64,
    /// Measured completion time of the whole batch, in ns.
    pub makespan_ns: f64,
    /// Modeled energy per image (sum of stage energies), in pJ.
    pub energy_per_image_pj: f64,
    /// Host wall-clock the simulator spent on this batch, in ns.
    pub wall_ns: u128,
}

impl RuntimeReport {
    /// Measured steady-state throughput, in images per second.
    pub fn throughput_per_s(&self) -> f64 {
        1e9 / self.steady_interval_ns
    }

    /// Measured whole-batch throughput (`batch / makespan`), in images
    /// per second — lower than [`throughput_per_s`] while the pipeline
    /// fills.
    ///
    /// [`throughput_per_s`]: RuntimeReport::throughput_per_s
    pub fn batch_throughput_per_s(&self) -> f64 {
        self.batch as f64 * 1e9 / self.makespan_ns
    }

    /// Host-side simulator throughput, in images per second.
    pub fn host_images_per_s(&self) -> f64 {
        self.batch as f64 * 1e9 / self.wall_ns as f64
    }

    /// `true` when this run's measured schedule reconciles with the
    /// analytical pipeline report: fill latency matches the predicted
    /// stage-latency sum, and — for pipelined runs — the steady-state
    /// interval matches the predicted bottleneck stage. Sequential and
    /// batched runs must instead show an interval equal to the full fill
    /// latency (no overlap).
    ///
    /// This is a genuine cross-check, not an identity: the run's side is
    /// built from the cycles each engine *actually issued* for each image
    /// of the batch, the analytic side from the closed-form geometry the
    /// cost model prices. A stage that drops or double-processes an
    /// image, or an engine whose dataflow diverges from its priced
    /// geometry, breaks the reconciliation.
    pub fn reconciles_with(&self, analytic: &PipelineReport) -> bool {
        let interval = match self.mode {
            ExecMode::Pipelined => analytic.steady_interval_ns(),
            ExecMode::Sequential | ExecMode::Batched => analytic.fill_latency_ns(),
        };
        rel_close(self.fill_latency_ns, analytic.fill_latency_ns())
            && rel_close(self.steady_interval_ns, interval)
    }
}

/// Relative closeness for modeled times assembled in different float
/// orders (1 ppb).
fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipBuilder;
    use red_workloads::networks;

    #[test]
    fn throughput_definitions_are_consistent() {
        let stack = networks::sngan_generator(64).unwrap();
        let chip = ChipBuilder::new().compile_seeded(&stack, 5, 1).unwrap();
        let inputs: Vec<_> = (0..3)
            .map(|i| red_workloads::synth::input_dense(&stack.layers[0], 30, i))
            .collect();
        let run = chip.run_pipelined(&inputs).unwrap();
        let r = &run.report;
        assert_eq!(r.batch, 3);
        assert!(r.throughput_per_s() >= r.batch_throughput_per_s());
        assert!(r.host_images_per_s() > 0.0);
        assert!(rel_close(
            r.makespan_ns,
            r.fill_latency_ns + 2.0 * r.steady_interval_ns
        ));
    }

    #[test]
    fn rel_close_tolerates_reassociation_only() {
        assert!(rel_close(1e12, 1e12 + 1e-3));
        assert!(!rel_close(1e12, 1.001e12));
    }
}
