use red_arch::ArchError;
use red_tensor::ShapeError;
use std::error::Error;
use std::fmt;

/// Errors from chip compilation and batched execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The stack failed seam validation (see `DeconvStack::validate`).
    Shape(ShapeError),
    /// Compiling or executing a stage failed.
    Arch(ArchError),
    /// The kernel count does not match the stack depth.
    KernelCount {
        /// Number of layers in the stack.
        expected: usize,
        /// Number of kernels supplied.
        actual: usize,
    },
    /// A batch run was given no inputs.
    EmptyBatch,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Shape(e) => write!(f, "stack validation failed: {e}"),
            RuntimeError::Arch(e) => write!(f, "stage error: {e}"),
            RuntimeError::KernelCount { expected, actual } => {
                write!(
                    f,
                    "stack has {expected} layers but {actual} kernels supplied"
                )
            }
            RuntimeError::EmptyBatch => write!(f, "batch needs at least one input"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Shape(e) => Some(e),
            RuntimeError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for RuntimeError {
    fn from(e: ShapeError) -> Self {
        RuntimeError::Shape(e)
    }
}

impl From<ArchError> for RuntimeError {
    fn from(e: ArchError) -> Self {
        RuntimeError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = RuntimeError::KernelCount {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("4 layers"));
        assert!(e.source().is_none());
        let e: RuntimeError = ArchError::EmptyPipeline.into();
        assert!(e.to_string().contains("at least one layer"));
        assert!(e.source().is_some());
        let e: RuntimeError = ShapeError::ZeroDimension("channels").into();
        assert!(e.to_string().contains("channels"));
        assert!(e.source().is_some());
        assert!(RuntimeError::EmptyBatch.to_string().contains("one input"));
    }
}
