//! Per-image hardware activity counters: the telemetry plane's view of
//! what the modeled chip physically does for one inference.
//!
//! Every figure is derived in closed form from the per-stage
//! [`DesignGeometry`](red_arch::DesignGeometry) the compiler already
//! priced, so the counters are exact integers — a batch of B images
//! does exactly `B ×` the per-image work, and per-request counter sums
//! reconcile exactly against aggregate report figures (asserted in the
//! workspace telemetry tests). Energy is carried in integer
//! **femtojoules** for the same reason: summing the rounded-per-stage
//! integer once per image keeps request-level sums exactly equal to
//! aggregate products, where repeated `f64` addition would drift.

use red_arch::CostReport;
use serde::Serialize;

fn sat_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Modeled hardware activity to push **one image** through every stage
/// of a chip. Obtain via [`crate::Chip::hardware_per_image`]; scale to a
/// batch with [`HardwarePerImage::scaled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct HardwarePerImage {
    /// Crossbar vector-operation activations (geometry `cycles`) summed
    /// over all stages — each is one wordline-parallel analog VMM issue.
    pub crossbar_activations: u64,
    /// Bit-serial input phases swept across those activations:
    /// `activations × 2·(input_bits−1)` (positive and negative polarity
    /// per magnitude bit).
    pub bit_phase_sweeps: u64,
    /// Non-zero wordline row-current adds into column accumulators,
    /// across all phases — the analog work zero-skipping designs avoid.
    pub plane_row_adds: u64,
    /// ADC integrate-and-fire conversions across all phases.
    pub adc_quantizations: u64,
    /// Modeled energy per image, in femtojoules (integer; see module
    /// docs for why not `f64` picojoules).
    pub energy_fj: u64,
}

impl HardwarePerImage {
    /// Derives the per-image counters from per-stage cost reports and
    /// the crossbar input precision (`input_bits` of the chip's
    /// `XbarConfig`).
    pub(crate) fn derive<'a>(costs: impl Iterator<Item = &'a CostReport>, input_bits: u32) -> Self {
        let mag = input_bits.saturating_sub(1).max(1);
        Self::derive_tier(costs, mag, mag)
    }

    /// [`HardwarePerImage::derive`] for a reduced-precision tier: only
    /// `live_mag_bits` of the chip's `full_mag_bits` input magnitude
    /// bits actually stream, so every per-phase counter (sweeps, row
    /// adds, conversions) scales to the live phase count and energy
    /// keeps its static share while the phase-gated share
    /// ([`CostReport::phase_gated_energy_pj`]) shrinks proportionally.
    /// `live == full` reproduces [`HardwarePerImage::derive`] exactly
    /// (bit-identical integers).
    pub(crate) fn derive_tier<'a>(
        costs: impl Iterator<Item = &'a CostReport>,
        full_mag_bits: u32,
        live_mag_bits: u32,
    ) -> Self {
        // Two polarity phases per live magnitude bit — the sweep the
        // analog engine actually performs (`CrossbarArray::vmm_analog`).
        let live = live_mag_bits.clamp(1, full_mag_bits.max(1));
        let phases = u128::from(2 * live);
        let full = full_mag_bits.max(1);
        let mut hw = Self::default();
        for cost in costs {
            let g = &cost.geometry;
            hw.crossbar_activations += g.cycles;
            hw.bit_phase_sweeps += sat_u64(u128::from(g.cycles) * phases);
            hw.plane_row_adds += sat_u64(g.nonzero_row_activations * phases);
            hw.adc_quantizations += sat_u64(g.conversions * phases);
            let pj = if live == full {
                cost.total_energy_pj()
            } else {
                cost.energy_at_live_bits_pj(live, full)
            };
            hw.energy_fj += (pj * 1_000.0).round() as u64;
        }
        hw
    }

    /// The counters for a batch of `images` (exact integer scaling,
    /// saturating at `u64::MAX`).
    #[must_use]
    pub fn scaled(self, images: u64) -> Self {
        Self {
            crossbar_activations: self.crossbar_activations.saturating_mul(images),
            bit_phase_sweeps: self.bit_phase_sweeps.saturating_mul(images),
            plane_row_adds: self.plane_row_adds.saturating_mul(images),
            adc_quantizations: self.adc_quantizations.saturating_mul(images),
            energy_fj: self.energy_fj.saturating_mul(images),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ChipBuilder;
    use red_workloads::networks;

    #[test]
    fn per_image_counters_follow_the_priced_geometry() {
        let stack = networks::sngan_generator(64).unwrap();
        let chip = ChipBuilder::new().compile_seeded(&stack, 5, 11).unwrap();
        let hw = chip.hardware_per_image();
        // Default XbarConfig: 8 input bits → 14 polarity phases.
        let phases = 14u128;
        let cycles: u64 = chip.stages().iter().map(|s| s.cost().geometry.cycles).sum();
        assert_eq!(hw.crossbar_activations, cycles);
        assert_eq!(hw.bit_phase_sweeps, cycles * phases as u64);
        let adds: u128 = chip
            .stages()
            .iter()
            .map(|s| s.cost().geometry.nonzero_row_activations)
            .sum::<u128>()
            * phases;
        assert_eq!(u128::from(hw.plane_row_adds), adds);
        let convs: u128 = chip
            .stages()
            .iter()
            .map(|s| s.cost().geometry.conversions)
            .sum::<u128>()
            * phases;
        assert_eq!(u128::from(hw.adc_quantizations), convs);
        // Integer femtojoules track the f64 picojoule figure to rounding.
        let pj = chip.energy_per_image_pj();
        assert!((hw.energy_fj as f64 / 1_000.0 - pj).abs() / pj < 1e-6);
    }

    #[test]
    fn batch_scaling_is_exact() {
        let stack = networks::sngan_generator(64).unwrap();
        let chip = ChipBuilder::new().compile_seeded(&stack, 5, 11).unwrap();
        let hw = chip.hardware_per_image();
        let b = hw.scaled(7);
        assert_eq!(b.crossbar_activations, 7 * hw.crossbar_activations);
        assert_eq!(b.energy_fj, 7 * hw.energy_fj);
        // Saturation, not overflow, at the extreme.
        let max = hw.scaled(u64::MAX);
        assert_eq!(max.adc_quantizations, u64::MAX);
    }
}
