use super::window::{self, WindowGeom, WindowScratch};
use super::Execution;
use crate::plan::ExecPlan;
use crate::{ArchError, CostModel, CostReport, Design, DesignGeometry};
use red_tensor::{ConvLayerShape, FeatureMap, Kernel, LayerShape};
use red_xbar::{CrossbarArray, XbarConfig};

/// Standard-convolution engine on the crossbar substrate.
///
/// This is the classic Fig. 1(b) kernel mapping the paper describes in
/// §II-A — `KH·KW·C` rows × `M` columns, one output pixel per cycle — the
/// operator the substrate accelerators (PRIME, ISAAC, PipeLayer) were
/// built for. The repository includes it so whole networks (a GAN's
/// conv discriminator, an FCN's conv backbone) can be mapped alongside
/// their deconvolution layers; RED itself only changes the *deconvolution*
/// layers.
///
/// Like the deconvolution engines, the receptive-field window schedule is
/// resolved once at construction into an [`ExecPlan`] and replayed
/// allocation-free on every run.
#[derive(Debug, Clone)]
pub struct ConvEngine {
    layer: ConvLayerShape,
    array: CrossbarArray,
    plan: ExecPlan,
}

/// Reusable working memory for [`ConvEngine::run_with`]: the gathered
/// receptive-field window, the per-pixel output buffer, and the
/// analog-path VMM scratch.
#[derive(Debug, Clone)]
pub struct ConvScratch(WindowScratch);

impl ConvEngine {
    /// Programs the engine for `layer` with `kernel`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::KernelMismatch`] when the kernel does not
    /// match the layer, and propagates programming errors.
    pub fn new(
        cfg: &XbarConfig,
        layer: &ConvLayerShape,
        kernel: &Kernel<i64>,
    ) -> Result<Self, ArchError> {
        if kernel.kernel_h() != layer.kernel_h()
            || kernel.kernel_w() != layer.kernel_w()
            || kernel.channels() != layer.channels()
            || kernel.filters() != layer.filters()
        {
            return Err(ArchError::KernelMismatch {
                detail: format!(
                    "kernel {}x{}x{}x{} vs conv layer {}x{}x{}x{}",
                    kernel.kernel_h(),
                    kernel.kernel_w(),
                    kernel.channels(),
                    kernel.filters(),
                    layer.kernel_h(),
                    layer.kernel_w(),
                    layer.channels(),
                    layer.filters()
                ),
            });
        }
        let (kh, kw, c, m) = (
            kernel.kernel_h(),
            kernel.kernel_w(),
            kernel.channels(),
            kernel.filters(),
        );
        let mut flat = Vec::with_capacity(kh * kw * c * m);
        for i in 0..kh {
            for j in 0..kw {
                for ch in 0..c {
                    flat.extend_from_slice(kernel.row(i, j, ch));
                }
            }
        }
        let array = CrossbarArray::program_flat(cfg, kh * kw * c, m, flat)?;
        let plan = Self::build_plan(layer);
        Ok(Self {
            layer: *layer,
            array,
            plan,
        })
    }

    /// Resolves the window schedule: output pixel `(u, v)`'s window tap
    /// `(i, j)` reads input `(u·s + i - p, v·s + j - p)` when that lands
    /// inside the input; zero-padded border taps are simply never
    /// gathered.
    fn build_plan(layer: &ConvLayerShape) -> ExecPlan {
        let (kh, kw) = (layer.kernel_h(), layer.kernel_w());
        let (oh, ow) = layer.output_extent();
        let (s, p) = (layer.stride(), layer.padding());
        let mut plan = ExecPlan::new();
        for u in 0..oh {
            for v in 0..ow {
                plan.begin_pixel(u, v);
                for i in 0..kh {
                    for j in 0..kw {
                        // Padded coordinate -> input coordinate.
                        let (hp, wp) = (u * s + i, v * s + j);
                        if hp < p || wp < p {
                            continue;
                        }
                        let (h, w) = (hp - p, wp - p);
                        if h >= layer.input_h() || w >= layer.input_w() {
                            continue;
                        }
                        plan.push_gather(i * kw + j, h, w);
                    }
                }
            }
        }
        plan
    }

    /// The conv layer this engine was programmed for.
    pub fn layer(&self) -> &ConvLayerShape {
        &self.layer
    }

    /// The programmed crossbar (for inspection/tests).
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    fn window_geom(&self) -> WindowGeom {
        let l = &self.layer;
        let (oh, ow) = l.output_extent();
        WindowGeom {
            channels: l.channels(),
            filters: l.filters(),
            out_h: oh,
            out_w: ow,
            window_len: l.taps() * l.channels(),
        }
    }

    /// Creates working memory for [`ConvEngine::run_with`].
    pub fn make_scratch(&self) -> ConvScratch {
        let g = self.window_geom();
        ConvScratch(WindowScratch::new(g.window_len, g.filters))
    }

    fn check_input(&self, input: &FeatureMap<i64>) -> Result<(), ArchError> {
        let l = &self.layer;
        if input.height() != l.input_h()
            || input.width() != l.input_w()
            || input.channels() != l.channels()
        {
            return Err(ArchError::InputMismatch {
                detail: format!(
                    "input {}x{}x{} vs conv layer {}x{}x{}",
                    input.height(),
                    input.width(),
                    input.channels(),
                    l.input_h(),
                    l.input_w(),
                    l.channels()
                ),
            });
        }
        Ok(())
    }

    /// Executes the convolution on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError> {
        self.run_with(input, &mut self.make_scratch())
    }

    /// Executes the convolution on `input` with caller-provided scratch,
    /// replaying the compile-time window plan; the only heap allocation
    /// per call is the output feature map itself.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run_with(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut ConvScratch,
    ) -> Result<Execution, ArchError> {
        self.check_input(input)?;
        Ok(window::run_plan(
            &self.plan,
            &self.array,
            self.window_geom(),
            input,
            &mut scratch.0,
            red_xbar::ExecPrecision::Full,
        ))
    }

    /// Executes the convolution on every input of a batch. When the
    /// array is large enough for batching to pay
    /// ([`CrossbarArray::vmm_batch_pays`] — cache-blocked exact on ideal
    /// crossbars, phase-major analog otherwise), each output pixel's
    /// windows are gathered across the whole batch and multiplied
    /// through [`CrossbarArray::vmm_batch`]; smaller arrays take a
    /// per-image loop with shared scratch. Bit-exact against per-input
    /// [`ConvEngine::run`] either way.
    ///
    /// # Errors
    ///
    /// As [`ConvEngine::run`]; the first failing input aborts the batch.
    pub fn run_batch(&self, inputs: &[FeatureMap<i64>]) -> Result<Vec<Execution>, ArchError> {
        if !self.array.vmm_batch_pays() {
            let mut scratch = self.make_scratch();
            return inputs
                .iter()
                .map(|input| self.run_with(input, &mut scratch))
                .collect();
        }
        for input in inputs {
            self.check_input(input)?;
        }
        Ok(window::run_plan_batch(
            &self.plan,
            &self.array,
            self.window_geom(),
            inputs,
            red_xbar::ExecPrecision::Full,
        ))
    }
}

impl CostModel {
    /// Prices a standard convolution layer on the substrate's Fig. 1(b)
    /// mapping (the same machinery the zero-padding deconvolution design
    /// uses, with the conv layer's own output-pixel cycle count).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the equivalent geometry cannot be derived.
    pub fn evaluate_conv(&self, layer: &ConvLayerShape) -> Result<CostReport, ArchError> {
        // The crossbar geometry of a conv layer is identical in form to the
        // zero-padding deconvolution mapping: (KH·KW·C) x M array,
        // one output pixel per cycle. Reuse that derivation on a deconv
        // LayerShape with matching array dims and cycle count, then patch
        // the cycle-dependent fields to the conv layer's true counts.
        let proxy = LayerShape::new(
            layer.input_h(),
            layer.input_w(),
            layer.channels(),
            layer.filters(),
            layer.kernel_h(),
            layer.kernel_w(),
            1,
            0,
        )
        .map_err(|e| ArchError::KernelMismatch {
            detail: format!("conv layer not mappable: {e}"),
        })?;
        let mut g = DesignGeometry::derive(Design::ZeroPadding, &proxy, self.cells_per_weight())?;
        let cycles = layer.output_pixels() as u64;
        let phys_cols = g.phys_cols_per_instance() as u128;
        g.cycles = cycles;
        g.conversions = cycles as u128 * phys_cols;
        g.sa_events = cycles as u128 * layer.filters() as u128;
        g.total_row_slots = cycles as u128 * g.array.total_rows() as u128;
        // Dense conv: every window tap lands on a real pixel except at the
        // zero-padded border. Bill the interior count (border effects are
        // second order for the sizes of interest).
        g.nonzero_row_activations = g.total_row_slots;
        Ok(self.price(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::conv::conv2d;

    fn setup(
        k: usize,
        s: usize,
        p: usize,
        ih: usize,
        c: usize,
        m: usize,
    ) -> (ConvLayerShape, Kernel<i64>, FeatureMap<i64>) {
        let layer = ConvLayerShape::new(ih, ih, c, m, k, k, s, p).unwrap();
        let kernel = Kernel::from_fn(k, k, c, m, |i, j, cc, mm| {
            ((i * 23 + j * 11 + cc * 5 + mm * 3) % 200) as i64 - 100
        });
        let input = FeatureMap::from_fn(ih, ih, c, |h, w, cc| {
            ((h * 9 + w * 5 + cc) % 60) as i64 - 25
        });
        (layer, kernel, input)
    }

    #[test]
    fn matches_golden_conv() {
        for (k, s, p, ih) in [(3, 1, 1, 6), (3, 2, 1, 8), (5, 1, 2, 7), (4, 2, 0, 8)] {
            let (layer, kernel, input) = setup(k, s, p, ih, 4, 3);
            let engine = ConvEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
            let exec = engine.run(&input).unwrap();
            let golden = conv2d(&input, &kernel, s, p).unwrap();
            assert_eq!(exec.output, golden, "k={k} s={s} p={p}");
            assert_eq!(exec.stats.cycles, layer.output_pixels() as u64);
        }
    }

    #[test]
    fn run_batch_matches_per_image_runs_ideal_and_noisy() {
        let (layer, kernel, input) = setup(3, 2, 1, 8, 4, 3);
        let inputs: Vec<_> = (0..3).map(|k| input.map(|v| v + k as i64)).collect();
        for cfg in [XbarConfig::ideal(), XbarConfig::noisy(0.01, 0.001, 0.0, 31)] {
            let engine = ConvEngine::new(&cfg, &layer, &kernel).unwrap();
            let batch = engine.run_batch(&inputs).unwrap();
            for (one, exec) in inputs.iter().zip(&batch) {
                let single = engine.run(one).unwrap();
                assert_eq!(single.output, exec.output);
                assert_eq!(single.stats, exec.stats);
            }
        }
    }

    #[test]
    fn run_batch_pixel_major_path_matches_per_image() {
        // 16 taps x 128 channels x 64 filters = 1 MiB of weights: crosses
        // the blocking threshold, exercising the batched gather +
        // vmm_batch path.
        let (layer, kernel, input) = setup(4, 1, 1, 6, 128, 64);
        let engine = ConvEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert!(engine.array().batching_pays());
        let inputs: Vec<_> = (0..2).map(|k| input.map(|v| v + k as i64)).collect();
        let batch = engine.run_batch(&inputs).unwrap();
        for (one, exec) in inputs.iter().zip(&batch) {
            let single = engine.run(one).unwrap();
            assert_eq!(single.output, exec.output);
            assert_eq!(single.stats, exec.stats);
        }
    }

    #[test]
    fn array_shape_is_fig1b_mapping() {
        let (layer, kernel, _) = setup(3, 1, 1, 6, 4, 5);
        let engine = ConvEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert_eq!(engine.array().rows(), 9 * 4);
        assert_eq!(engine.array().weight_cols(), 5);
        assert_eq!(engine.layer(), &layer);
    }

    #[test]
    fn rejects_bad_shapes() {
        let (layer, kernel, _) = setup(3, 1, 1, 6, 4, 3);
        let bad = Kernel::<i64>::zeros(3, 3, 4, 2);
        assert!(ConvEngine::new(&XbarConfig::ideal(), &layer, &bad).is_err());
        let engine = ConvEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert!(engine.run(&FeatureMap::<i64>::zeros(5, 6, 4)).is_err());
    }

    #[test]
    fn conv_cost_scales_with_output_pixels() {
        let model = CostModel::paper_default();
        let small = ConvLayerShape::new(8, 8, 32, 16, 3, 3, 1, 1).unwrap();
        let big = ConvLayerShape::new(16, 16, 32, 16, 3, 3, 1, 1).unwrap();
        let rs = model.evaluate_conv(&small).unwrap();
        let rb = model.evaluate_conv(&big).unwrap();
        assert_eq!(rs.geometry.cycles, 64);
        assert_eq!(rb.geometry.cycles, 256);
        let ratio = rb.total_latency_ns() / rs.total_latency_ns();
        assert!((ratio - 4.0).abs() < 0.01, "latency ratio {ratio}");
        // Same weights, same area.
        assert!((rs.total_area_um2() - rb.total_area_um2()).abs() < 1e-6);
    }

    #[test]
    fn strided_conv_costs_fewer_cycles() {
        let model = CostModel::paper_default();
        let dense = ConvLayerShape::new(16, 16, 8, 8, 3, 3, 1, 1).unwrap();
        let strided = ConvLayerShape::new(16, 16, 8, 8, 3, 3, 2, 1).unwrap();
        let rd = model.evaluate_conv(&dense).unwrap();
        let rs = model.evaluate_conv(&strided).unwrap();
        assert!(rs.geometry.cycles < rd.geometry.cycles);
        assert!(rs.total_energy_pj() < rd.total_energy_pj());
    }
}
