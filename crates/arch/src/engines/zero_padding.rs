use super::{check_input, check_kernel, DeconvEngine, Execution};
use crate::{ArchError, Design, ExecutionStats};
use red_tensor::deconv::zero_insert_pad;
use red_tensor::{FeatureMap, Kernel, LayerShape};
use red_xbar::{CrossbarArray, XbarConfig};

/// The conventional zero-padding design (paper Fig. 3(a)): the kernel maps
/// like a standard convolution onto one `(KH·KW·C) × M` crossbar, and the
/// zero-inserted, border-padded input streams through it one receptive
/// field per cycle — `OH·OW` cycles, most of whose wordlines carry the
/// inserted zeros (Fig. 4's redundancy).
///
/// Row order matches the window flattening `((i·KW + j)·C + c)` with the
/// 180°-rotated kernel, exactly composing Algorithm 1's two steps.
#[derive(Debug, Clone)]
pub struct ZeroPaddingEngine {
    layer: LayerShape,
    array: CrossbarArray,
}

impl ZeroPaddingEngine {
    /// Programs the engine for `layer` with `kernel`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::KernelMismatch`] when the kernel does not match
    /// the layer, and propagates programming errors.
    pub fn new(
        cfg: &XbarConfig,
        layer: &LayerShape,
        kernel: &Kernel<i64>,
    ) -> Result<Self, ArchError> {
        check_kernel(layer, kernel)?;
        let rotated = kernel.rotate_180();
        let (kh, kw) = (rotated.kernel_h(), rotated.kernel_w());
        let (c, m) = (rotated.channels(), rotated.filters());
        let mut flat = Vec::with_capacity(kh * kw * c * m);
        for i in 0..kh {
            for j in 0..kw {
                for ch in 0..c {
                    flat.extend_from_slice(rotated.row(i, j, ch));
                }
            }
        }
        let array = CrossbarArray::program_flat(cfg, kh * kw * c, m, flat)?;
        Ok(Self {
            layer: *layer,
            array,
        })
    }

    /// The programmed crossbar (for inspection/tests).
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }
}

impl DeconvEngine for ZeroPaddingEngine {
    fn design(&self) -> Design {
        Design::ZeroPadding
    }

    fn layer(&self) -> &LayerShape {
        &self.layer
    }

    fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError> {
        check_input(&self.layer, input)?;
        let spec = self.layer.spec();
        let padded = zero_insert_pad(input, spec);
        let geom = self.layer.output_geometry();
        let (kh, kw) = (spec.kernel_h(), spec.kernel_w());
        let c = self.layer.channels();
        let m = self.layer.filters();

        let mut output = FeatureMap::<i64>::zeros(geom.height, geom.width, m);
        let mut stats = ExecutionStats::default();
        let mut window = vec![0i64; kh * kw * c];

        for u in 0..geom.height {
            for v in 0..geom.width {
                // Gather the receptive field; the rotated-kernel row order
                // means window element ((i*KW + j)*C + c) pairs with
                // rotated tap (i, j).
                for i in 0..kh {
                    for j in 0..kw {
                        let px = padded.pixel(u + i, v + j);
                        window[(i * kw + j) * c..(i * kw + j + 1) * c].copy_from_slice(px);
                    }
                }
                let nnz = window.iter().filter(|x| **x != 0).count() as u128;
                stats.cycles += 1;
                stats.vector_ops += 1;
                stats.nonzero_row_activations += nnz;
                stats.total_row_slots += window.len() as u128;
                stats.nonzero_macs += nnz * m as u128;
                stats.output_pixels += 1;

                let result = self.array.vmm(&window);
                output.pixel_mut(u, v).copy_from_slice(&result);
            }
        }
        Ok(Execution { output, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::deconv::deconv_direct;

    fn setup(
        k: usize,
        s: usize,
        p: usize,
        op: usize,
        ih: usize,
        c: usize,
        m: usize,
    ) -> (LayerShape, Kernel<i64>, FeatureMap<i64>) {
        let spec = red_tensor::DeconvSpec::with_output_padding(k, k, s, p, op).unwrap();
        let layer = LayerShape::with_spec(ih, ih, c, m, spec).unwrap();
        let kernel = Kernel::from_fn(k, k, c, m, |i, j, cc, mm| {
            ((i * 37 + j * 11 + cc * 3 + mm * 7) % 200) as i64 - 100
        });
        let input = FeatureMap::from_fn(ih, ih, c, |h, w, cc| {
            ((h * 13 + w * 5 + cc) % 50) as i64 - 20
        });
        (layer, kernel, input)
    }

    #[test]
    fn matches_golden_deconv() {
        for (k, s, p, op, ih) in [(4, 2, 1, 0, 4), (5, 2, 2, 1, 4), (3, 3, 0, 0, 3)] {
            let (layer, kernel, input) = setup(k, s, p, op, ih, 6, 4);
            let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
            let exec = engine.run(&input).unwrap();
            let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
            assert_eq!(exec.output, golden, "k={k} s={s} p={p} op={op}");
        }
    }

    #[test]
    fn cycle_count_is_output_pixels() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let exec = engine.run(&input).unwrap();
        let geom = layer.output_geometry();
        assert_eq!(exec.stats.cycles, geom.pixels() as u64);
        assert_eq!(exec.stats.output_pixels, geom.pixels() as u64);
    }

    #[test]
    fn measures_the_fig4_redundancy() {
        // Dense input: the measured zero-slot fraction equals the analytic
        // per-MAC redundancy of the redundancy module.
        let spec = red_tensor::DeconvSpec::new(4, 4, 2, 1).unwrap();
        let layer = LayerShape::with_spec(4, 4, 3, 2, spec).unwrap();
        let kernel = Kernel::from_fn(4, 4, 3, 2, |i, j, c, m| (i + j + c + m) as i64);
        let input = FeatureMap::from_fn(4, 4, 3, |_, _, _| 1); // all non-zero
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let exec = engine.run(&input).unwrap();
        let analytic = red_tensor::redundancy::mac_zero_fraction(4, 4, &spec).unwrap();
        assert!(
            (exec.stats.zero_slot_fraction() - analytic).abs() < 1e-12,
            "measured {} vs analytic {analytic}",
            exec.stats.zero_slot_fraction()
        );
    }

    #[test]
    fn rejects_mismatched_kernel_and_input() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let bad_kernel = Kernel::<i64>::zeros(3, 3, 3, 2);
        assert!(matches!(
            ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &bad_kernel),
            Err(ArchError::KernelMismatch { .. })
        ));
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let bad_input = FeatureMap::<i64>::zeros(5, 4, 3);
        assert!(matches!(
            engine.run(&bad_input),
            Err(ArchError::InputMismatch { .. })
        ));
        let _ = input;
    }

    #[test]
    fn array_geometry_matches_design() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 3, 2);
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert_eq!(engine.array().rows(), 16 * 3);
        assert_eq!(engine.array().weight_cols(), 2);
        assert_eq!(engine.design(), Design::ZeroPadding);
        assert_eq!(engine.layer(), &layer);
    }
}
