use super::window::{self, WindowGeom, WindowScratch};
use super::{check_input, check_kernel, DeconvEngine, Execution};
use crate::plan::ExecPlan;
use crate::{ArchError, Design};
use red_tensor::{FeatureMap, Kernel, LayerShape};
use red_xbar::{CrossbarArray, ExecPrecision, XbarConfig};

/// The conventional zero-padding design (paper Fig. 3(a)): the kernel maps
/// like a standard convolution onto one `(KH·KW·C) × M` crossbar, and the
/// zero-inserted, border-padded input streams through it one receptive
/// field per cycle — `OH·OW` cycles, most of whose wordlines carry the
/// inserted zeros (Fig. 4's redundancy).
///
/// Row order matches the window flattening `((i·KW + j)·C + c)` with the
/// 180°-rotated kernel, exactly composing Algorithm 1's two steps.
///
/// Instead of materialising the zero-inserted padded tensor per image, the
/// window schedule — which real input pixel lands in which receptive-field
/// slot of which output pixel — is resolved once at construction into an
/// [`ExecPlan`] and replayed allocation-free by every run.
#[derive(Debug, Clone)]
pub struct ZeroPaddingEngine {
    layer: LayerShape,
    array: CrossbarArray,
    plan: ExecPlan,
}

/// Reusable working memory for [`ZeroPaddingEngine::run_with`]: the
/// gathered receptive-field window, the per-pixel output buffer, and the
/// analog-path VMM scratch.
#[derive(Debug, Clone)]
pub struct ZpScratch(WindowScratch);

impl ZeroPaddingEngine {
    /// Programs the engine for `layer` with `kernel`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::KernelMismatch`] when the kernel does not match
    /// the layer, and propagates programming errors.
    pub fn new(
        cfg: &XbarConfig,
        layer: &LayerShape,
        kernel: &Kernel<i64>,
    ) -> Result<Self, ArchError> {
        check_kernel(layer, kernel)?;
        let rotated = kernel.rotate_180();
        let (kh, kw) = (rotated.kernel_h(), rotated.kernel_w());
        let (c, m) = (rotated.channels(), rotated.filters());
        let mut flat = Vec::with_capacity(kh * kw * c * m);
        for i in 0..kh {
            for j in 0..kw {
                for ch in 0..c {
                    flat.extend_from_slice(rotated.row(i, j, ch));
                }
            }
        }
        let array = CrossbarArray::program_flat(cfg, kh * kw * c, m, flat)?;
        let plan = Self::build_plan(layer);
        Ok(Self {
            layer: *layer,
            array,
            plan,
        })
    }

    /// Resolves the window schedule: output pixel `(u, v)`'s receptive
    /// field covers padded coordinates `(u+i, v+j)`; a padded coordinate
    /// holds real input pixel `(x, y)` exactly when it sits `stride`-aligned
    /// past the `K-1-p` border (`zero_insert_pad`'s layout — every other
    /// slot is an inserted zero the plan simply never gathers).
    fn build_plan(layer: &LayerShape) -> ExecPlan {
        let spec = layer.spec();
        let s = spec.stride();
        let (kh, kw) = (spec.kernel_h(), spec.kernel_w());
        let bh = spec.border_before(kh);
        let bw = spec.border_before(kw);
        let geom = layer.output_geometry();
        let (ih, iw) = (layer.input_h(), layer.input_w());
        let mut plan = ExecPlan::new();
        for u in 0..geom.height {
            for v in 0..geom.width {
                plan.begin_pixel(u, v);
                for i in 0..kh {
                    for j in 0..kw {
                        let (Some(dh), Some(dw)) =
                            ((u + i).checked_sub(bh), (v + j).checked_sub(bw))
                        else {
                            continue;
                        };
                        if dh % s != 0 || dw % s != 0 {
                            continue;
                        }
                        let (x, y) = (dh / s, dw / s);
                        if x >= ih || y >= iw {
                            continue;
                        }
                        plan.push_gather(i * kw + j, x, y);
                    }
                }
            }
        }
        plan
    }

    /// The programmed crossbar (for inspection/tests).
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// The frozen window schedule (for inspection/tests).
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    fn window_geom(&self) -> WindowGeom {
        let geom = self.layer.output_geometry();
        WindowGeom {
            channels: self.layer.channels(),
            filters: self.layer.filters(),
            out_h: geom.height,
            out_w: geom.width,
            window_len: self.layer.spec().taps() * self.layer.channels(),
        }
    }

    /// Creates working memory for [`ZeroPaddingEngine::run_with`].
    pub fn make_scratch(&self) -> ZpScratch {
        let g = self.window_geom();
        ZpScratch(WindowScratch::new(g.window_len, g.filters))
    }

    /// Executes the layer on `input` with caller-provided scratch,
    /// replaying the compile-time window plan (the rotated-kernel row
    /// order means window element `((i·KW + j)·C + c)` pairs with rotated
    /// tap `(i, j)`); the only heap allocation per call is the output
    /// feature map itself.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run_with(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut ZpScratch,
    ) -> Result<Execution, ArchError> {
        self.run_with_at(input, scratch, ExecPrecision::Full)
    }

    /// [`ZeroPaddingEngine::run_with`] at an explicit precision tier:
    /// `prec` selects how many low input bits the crossbar drops per
    /// window (see [`ExecPrecision`]). Metering is unchanged across
    /// tiers; only the VMM conversion-phase window narrows.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run_with_at(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut ZpScratch,
        prec: ExecPrecision,
    ) -> Result<Execution, ArchError> {
        check_input(&self.layer, input)?;
        Ok(window::run_plan(
            &self.plan,
            &self.array,
            self.window_geom(),
            input,
            &mut scratch.0,
            prec,
        ))
    }
}

impl DeconvEngine for ZeroPaddingEngine {
    fn design(&self) -> Design {
        Design::ZeroPadding
    }

    fn layer(&self) -> &LayerShape {
        &self.layer
    }

    fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError> {
        self.run_with(input, &mut self.make_scratch())
    }

    /// Batched execution: when the `(KH·KW·C) × M` array is large enough
    /// for batching to pay ([`CrossbarArray::vmm_batch_pays`] — the
    /// cache-blocked exact path on ideal crossbars, the phase-major
    /// analog path over the effective-current plane otherwise), every
    /// output pixel's windows are gathered for the whole batch and
    /// multiplied through [`CrossbarArray::vmm_batch`], so the weights
    /// (or plane rows) stream from cache once per block instead of once
    /// per image. Smaller arrays fall back to per-image execution with
    /// shared scratch. Bit-exact against per-input
    /// [`DeconvEngine::run`] either way.
    fn run_batch(&self, inputs: &[FeatureMap<i64>]) -> Result<Vec<Execution>, ArchError> {
        if !self.array.vmm_batch_pays() {
            let mut scratch = self.make_scratch();
            return inputs
                .iter()
                .map(|input| self.run_with(input, &mut scratch))
                .collect();
        }
        self.run_batch_blocked(inputs, ExecPrecision::Full)
    }
}

impl ZeroPaddingEngine {
    /// [`DeconvEngine::run_batch`] with caller-provided scratch: the
    /// per-image fallback below the batching threshold reuses `scratch`
    /// instead of allocating a fresh one per call, so a serving loop
    /// issuing many small batches stays allocation-free in steady state.
    /// Above the threshold this is exactly `run_batch`. Bit-exact against
    /// both either way.
    ///
    /// # Errors
    ///
    /// As [`DeconvEngine::run_batch`].
    pub fn run_batch_with(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut ZpScratch,
    ) -> Result<Vec<Execution>, ArchError> {
        self.run_batch_with_at(inputs, scratch, ExecPrecision::Full)
    }

    /// [`ZeroPaddingEngine::run_batch_with`] at an explicit precision
    /// tier (see [`ZeroPaddingEngine::run_with_at`]).
    ///
    /// # Errors
    ///
    /// As [`DeconvEngine::run_batch`].
    pub fn run_batch_with_at(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut ZpScratch,
        prec: ExecPrecision,
    ) -> Result<Vec<Execution>, ArchError> {
        if !self.array.vmm_batch_pays() {
            return inputs
                .iter()
                .map(|input| self.run_with_at(input, scratch, prec))
                .collect();
        }
        self.run_batch_blocked(inputs, prec)
    }

    /// The paying pixel-major batch path (shared by `run_batch` and
    /// `run_batch_with_at`).
    fn run_batch_blocked(
        &self,
        inputs: &[FeatureMap<i64>],
        prec: ExecPrecision,
    ) -> Result<Vec<Execution>, ArchError> {
        for input in inputs {
            check_input(&self.layer, input)?;
        }
        Ok(window::run_plan_batch(
            &self.plan,
            &self.array,
            self.window_geom(),
            inputs,
            prec,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::deconv::deconv_direct;

    fn setup(
        k: usize,
        s: usize,
        p: usize,
        op: usize,
        ih: usize,
        c: usize,
        m: usize,
    ) -> (LayerShape, Kernel<i64>, FeatureMap<i64>) {
        let spec = red_tensor::DeconvSpec::with_output_padding(k, k, s, p, op).unwrap();
        let layer = LayerShape::with_spec(ih, ih, c, m, spec).unwrap();
        let kernel = Kernel::from_fn(k, k, c, m, |i, j, cc, mm| {
            ((i * 37 + j * 11 + cc * 3 + mm * 7) % 200) as i64 - 100
        });
        let input = FeatureMap::from_fn(ih, ih, c, |h, w, cc| {
            ((h * 13 + w * 5 + cc) % 50) as i64 - 20
        });
        (layer, kernel, input)
    }

    #[test]
    fn matches_golden_deconv() {
        for (k, s, p, op, ih) in [(4, 2, 1, 0, 4), (5, 2, 2, 1, 4), (3, 3, 0, 0, 3)] {
            let (layer, kernel, input) = setup(k, s, p, op, ih, 6, 4);
            let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
            let exec = engine.run(&input).unwrap();
            let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
            assert_eq!(exec.output, golden, "k={k} s={s} p={p} op={op}");
        }
    }

    #[test]
    fn cycle_count_is_output_pixels() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let exec = engine.run(&input).unwrap();
        let geom = layer.output_geometry();
        assert_eq!(exec.stats.cycles, geom.pixels() as u64);
        assert_eq!(exec.stats.output_pixels, geom.pixels() as u64);
    }

    #[test]
    fn measures_the_fig4_redundancy() {
        // Dense input: the measured zero-slot fraction equals the analytic
        // per-MAC redundancy of the redundancy module.
        let spec = red_tensor::DeconvSpec::new(4, 4, 2, 1).unwrap();
        let layer = LayerShape::with_spec(4, 4, 3, 2, spec).unwrap();
        let kernel = Kernel::from_fn(4, 4, 3, 2, |i, j, c, m| (i + j + c + m) as i64);
        let input = FeatureMap::from_fn(4, 4, 3, |_, _, _| 1); // all non-zero
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let exec = engine.run(&input).unwrap();
        let analytic = red_tensor::redundancy::mac_zero_fraction(4, 4, &spec).unwrap();
        assert!(
            (exec.stats.zero_slot_fraction() - analytic).abs() < 1e-12,
            "measured {} vs analytic {analytic}",
            exec.stats.zero_slot_fraction()
        );
    }

    #[test]
    fn run_batch_matches_per_image_runs_ideal_and_noisy() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let inputs: Vec<_> = (0..3).map(|k| input.map(|v| v - k as i64)).collect();
        for cfg in [XbarConfig::ideal(), XbarConfig::noisy(0.01, 0.001, 0.0, 17)] {
            let engine = ZeroPaddingEngine::new(&cfg, &layer, &kernel).unwrap();
            let batch = engine.run_batch(&inputs).unwrap();
            for (one, exec) in inputs.iter().zip(&batch) {
                let single = engine.run(one).unwrap();
                assert_eq!(single.output, exec.output);
                assert_eq!(single.stats, exec.stats);
            }
        }
    }

    #[test]
    fn run_batch_pixel_major_path_matches_per_image() {
        // 16 taps x 128 channels x 64 filters = 1 MiB of weights: crosses
        // the blocking threshold, so this exercises the batched gather +
        // vmm_batch path (the small-layer test above covers the fallback).
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 128, 64);
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert!(engine.array().batching_pays());
        let inputs: Vec<_> = (0..2).map(|k| input.map(|v| v + k as i64)).collect();
        let batch = engine.run_batch(&inputs).unwrap();
        for (one, exec) in inputs.iter().zip(&batch) {
            let single = engine.run(one).unwrap();
            assert_eq!(single.output, exec.output);
            assert_eq!(single.stats, exec.stats);
        }
    }

    #[test]
    fn rejects_mismatched_kernel_and_input() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let bad_kernel = Kernel::<i64>::zeros(3, 3, 3, 2);
        assert!(matches!(
            ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &bad_kernel),
            Err(ArchError::KernelMismatch { .. })
        ));
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let bad_input = FeatureMap::<i64>::zeros(5, 4, 3);
        assert!(matches!(
            engine.run(&bad_input),
            Err(ArchError::InputMismatch { .. })
        ));
        let _ = input;
    }

    #[test]
    fn array_geometry_matches_design() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 3, 2);
        let engine = ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert_eq!(engine.array().rows(), 16 * 3);
        assert_eq!(engine.array().weight_cols(), 2);
        assert_eq!(engine.design(), Design::ZeroPadding);
        assert_eq!(engine.layer(), &layer);
    }
}
