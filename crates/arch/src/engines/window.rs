//! Shared plan-replay executor for the window engines.
//!
//! `ZeroPaddingEngine` and `ConvEngine` differ only in how their window
//! schedule is *built* (zero-inserted padded coordinates vs strided conv
//! coordinates); executing a built plan — gather each output pixel's
//! receptive field, meter it, multiply it through the crossbar — is
//! identical. This module holds that executor once, for both the
//! per-image scratch path and the pixel-major batched path.

use super::Execution;
use crate::plan::ExecPlan;
use crate::ExecutionStats;
use red_tensor::FeatureMap;
use red_xbar::{CrossbarArray, ExecPrecision, VmmScratch};

/// Static geometry a window plan executes against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowGeom {
    /// Input channels `C` (one gather copies `C` values per slot).
    pub channels: usize,
    /// Filters `M` (output values per pixel).
    pub filters: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
    /// Receptive-field window length (`taps · C`).
    pub window_len: usize,
}

/// Reusable working memory for [`run_plan`]: the gathered receptive-field
/// window, the per-pixel output buffer, and the analog-path VMM scratch.
#[derive(Debug, Clone)]
pub(crate) struct WindowScratch {
    window: Vec<i64>,
    out: Vec<i64>,
    vmm: VmmScratch,
}

impl WindowScratch {
    pub(crate) fn new(window_len: usize, filters: usize) -> Self {
        Self {
            window: vec![0i64; window_len],
            out: vec![0i64; filters],
            vmm: VmmScratch::new(),
        }
    }
}

/// Gathers one pixel's receptive field into `window` (zeroed first) and
/// returns its non-zero entry count.
fn gather_window(
    plan_entries: &[crate::plan::GatherEntry],
    input: &FeatureMap<i64>,
    channels: usize,
    window: &mut [i64],
) -> u128 {
    window.fill(0);
    for g in plan_entries {
        let px = input.pixel(g.x as usize, g.y as usize);
        let slot = g.slot as usize;
        window[slot * channels..(slot + 1) * channels].copy_from_slice(px);
    }
    window.iter().filter(|x| **x != 0).count() as u128
}

fn meter_window(stats: &mut ExecutionStats, nnz: u128, window_len: usize, filters: usize) {
    stats.cycles += 1;
    stats.vector_ops += 1;
    stats.nonzero_row_activations += nnz;
    stats.total_row_slots += window_len as u128;
    stats.nonzero_macs += nnz * filters as u128;
    stats.output_pixels += 1;
}

/// Replays a window plan for one image with caller-provided scratch; the
/// only heap allocation is the output feature map. The input must already
/// be shape-checked. Metering is over the *untruncated* gathered window,
/// so [`ExecutionStats`] are identical across precision tiers (the tier
/// changes conversion phases, not the value-structure schedule).
pub(crate) fn run_plan(
    plan: &ExecPlan,
    array: &CrossbarArray,
    geom: WindowGeom,
    input: &FeatureMap<i64>,
    scratch: &mut WindowScratch,
    prec: ExecPrecision,
) -> Execution {
    let mut output = FeatureMap::<i64>::zeros(geom.out_h, geom.out_w, geom.filters);
    let mut stats = ExecutionStats::default();
    for ((u, v), gathers) in plan.iter() {
        let nnz = gather_window(gathers, input, geom.channels, &mut scratch.window);
        meter_window(&mut stats, nnz, scratch.window.len(), geom.filters);
        array.vmm_into_at(&scratch.window, &mut scratch.vmm, &mut scratch.out, prec);
        output.pixel_mut(u, v).copy_from_slice(&scratch.out);
    }
    Execution { output, stats }
}

/// Replays a window plan pixel-major over a whole batch, gathering every
/// image's window per output pixel and multiplying them through the
/// batched [`CrossbarArray::vmm_batch`] — cache-blocked exact VMM on the
/// ideal path, phase-major analog VMM over the effective-current plane
/// otherwise, with one [`VmmScratch`] owned here and reused for every
/// output pixel. Inputs must already be shape-checked; callers gate this
/// on [`CrossbarArray::vmm_batch_pays`] — below those thresholds the
/// per-image [`run_plan`] loop is faster.
pub(crate) fn run_plan_batch(
    plan: &ExecPlan,
    array: &CrossbarArray,
    geom: WindowGeom,
    inputs: &[FeatureMap<i64>],
    prec: ExecPrecision,
) -> Vec<Execution> {
    let n = inputs.len();
    let m = geom.filters;
    let mut outputs: Vec<FeatureMap<i64>> = inputs
        .iter()
        .map(|_| FeatureMap::zeros(geom.out_h, geom.out_w, m))
        .collect();
    let mut stats = vec![ExecutionStats::default(); n];
    let mut windows = vec![0i64; n * geom.window_len];
    let mut outs = vec![0i64; n * m];
    let mut vmm = VmmScratch::new();

    for ((u, v), gathers) in plan.iter() {
        for (window, (input, st)) in windows
            .chunks_exact_mut(geom.window_len)
            .zip(inputs.iter().zip(&mut stats))
        {
            let nnz = gather_window(gathers, input, geom.channels, window);
            meter_window(st, nnz, geom.window_len, m);
        }
        array.vmm_batch_at(&windows, n, &mut vmm, &mut outs, prec);
        for (k, output) in outputs.iter_mut().enumerate() {
            output
                .pixel_mut(u, v)
                .copy_from_slice(&outs[k * m..(k + 1) * m]);
        }
    }
    outputs
        .into_iter()
        .zip(stats)
        .map(|(output, stats)| Execution { output, stats })
        .collect()
}
