use super::{check_input, check_kernel, DeconvEngine, Execution};
use crate::plan::ExecPlan;
use crate::{ArchError, Design, ExecutionStats, RedLayoutPolicy};
use red_tensor::modes::ModeSet;
use red_tensor::{FeatureMap, Kernel, LayerShape};
use red_xbar::{ExecPrecision, SctLayout, SubCrossbarTensor, TapScratch, XbarConfig};

/// The RED design (paper §III-B): pixel-wise mapping (Eq. 1) plus the
/// zero-skipping data flow (Fig. 5).
///
/// The kernel lives in `KH·KW` sub-crossbars of shape `C × M` (or the
/// Eq. 2 halved arrangement). Each batch produces one `s × s` block of
/// output pixels: every computation mode (Fig. 6) claims its disjoint tap
/// set, each active tap's sub-crossbar is driven with the *real* input
/// pixel it needs (padded zeros are never driven — that is the whole
/// point), and the mode group's partial sums merge into the output pixel
/// through the vertical sum-up path.
///
/// The mode/tap/coordinate resolution — which input pixel feeds which
/// sub-crossbar for which output pixel — depends only on the layer
/// geometry, so it is resolved once at construction into an [`ExecPlan`]
/// and replayed allocation-free by every run (see [`RedEngine::run_with`]).
#[derive(Debug, Clone)]
pub struct RedEngine {
    layer: LayerShape,
    sct: SubCrossbarTensor,
    modes: ModeSet,
    plan: ExecPlan,
    /// `s × s` output blocks per image (Fig. 5(c) batches).
    blocks: u64,
}

/// Reusable working memory for [`RedEngine::run_with`]: the vertical
/// sum-up accumulator, the per-tap partial-sum buffer, and the sub-crossbar
/// tap scratch. Built once (per run, worker, or batch) and reused for every
/// output pixel, so steady-state execution performs no per-pixel heap
/// allocation.
#[derive(Debug, Clone)]
pub struct RedScratch {
    acc: Vec<i64>,
    partial: Vec<i64>,
    taps: TapScratch,
}

impl RedEngine {
    /// Programs the engine for `layer` with `kernel` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::KernelMismatch`] when the kernel does not match
    /// the layer, and propagates programming errors.
    pub fn new(
        cfg: &XbarConfig,
        layer: &LayerShape,
        kernel: &Kernel<i64>,
        policy: RedLayoutPolicy,
    ) -> Result<Self, ArchError> {
        check_kernel(layer, kernel)?;
        let layout = policy.resolve(layer);
        let sct = SubCrossbarTensor::map(cfg, kernel, layout)?;
        let modes = ModeSet::enumerate(layer.spec());
        let (plan, blocks) = Self::build_plan(layer, &modes);
        Ok(Self {
            layer: *layer,
            sct,
            modes,
            plan,
            blocks,
        })
    }

    /// Resolves the zero-skipping gather schedule for every output pixel:
    /// one batch per `s × s` output block (Fig. 5(c)'s cycle schedule),
    /// each pixel gathering the real input pixels its mode's taps read.
    fn build_plan(layer: &LayerShape, modes: &ModeSet) -> (ExecPlan, u64) {
        let spec = layer.spec();
        let s = spec.stride();
        let p = spec.padding();
        let kw = spec.kernel_w();
        let geom = layer.output_geometry();
        let (ih, iw) = (layer.input_h(), layer.input_w());
        let mut plan = ExecPlan::new();
        let mut blocks = 0u64;
        for bu in 0..geom.height.div_ceil(s) {
            for bv in 0..geom.width.div_ceil(s) {
                blocks += 1;
                for a in 0..s {
                    for b in 0..s {
                        let (u, v) = (bu * s + a, bv * s + b);
                        if u >= geom.height || v >= geom.width {
                            continue;
                        }
                        plan.begin_pixel(u, v);
                        let mode = modes.mode_of_output(u, v, p);
                        for &(i, j) in &mode.taps {
                            // Gather condition: tap (i, j) reads input
                            // (x, y) with s*x = u + p - i.
                            let Some(du) = (u + p).checked_sub(i) else {
                                continue;
                            };
                            let Some(dv) = (v + p).checked_sub(j) else {
                                continue;
                            };
                            if du % s != 0 || dv % s != 0 {
                                continue;
                            }
                            let (x, y) = (du / s, dv / s);
                            if x >= ih || y >= iw {
                                continue;
                            }
                            plan.push_gather(i * kw + j, x, y);
                        }
                    }
                }
            }
        }
        (plan, blocks)
    }

    /// The sub-crossbar tensor (for inspection/tests).
    pub fn sct(&self) -> &SubCrossbarTensor {
        &self.sct
    }

    /// The resolved layout (full or halved).
    pub fn layout(&self) -> SctLayout {
        self.sct.layout()
    }

    /// The frozen gather schedule (for inspection/tests).
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// The computation-mode decomposition the plan was resolved from.
    pub fn modes(&self) -> &ModeSet {
        &self.modes
    }

    /// Creates working memory for [`RedEngine::run_with`].
    pub fn make_scratch(&self) -> RedScratch {
        let m = self.layer.filters();
        RedScratch {
            acc: vec![0i64; m],
            partial: vec![0i64; m],
            taps: TapScratch::new(),
        }
    }

    /// The per-image [`ExecutionStats`] every run starts from. Every
    /// sub-crossbar fires each batch; in the halved layout the pair
    /// array fires twice (once per half), so the slot count is
    /// rows-per-array x arrays x cycles either way.
    fn base_stats(&self) -> ExecutionStats {
        let cycles_per_batch = self.sct.cycles_per_batch() as u64;
        ExecutionStats {
            cycles: self.blocks * cycles_per_batch,
            total_row_slots: self.blocks as u128
                * (self.sct.sub_crossbars() * self.sct.rows_per_array()) as u128
                * cycles_per_batch as u128,
            ..ExecutionStats::default()
        }
    }

    /// Meters one gathered input pixel: one vector op driving `filters`
    /// MACs per non-zero channel.
    fn meter_gather(stats: &mut ExecutionStats, px: &[i64], filters: usize) {
        let nnz = px.iter().filter(|v| **v != 0).count() as u128;
        stats.vector_ops += 1;
        stats.nonzero_row_activations += nnz;
        stats.nonzero_macs += nnz * filters as u128;
    }

    /// Executes the layer on `input` with caller-provided scratch, so a
    /// batch or a pipeline worker pays the buffer setup once instead of
    /// per image. Replays the compile-time [`ExecPlan`]; the only heap
    /// allocation per call is the output feature map itself.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run_with(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut RedScratch,
    ) -> Result<Execution, ArchError> {
        self.run_with_at(input, scratch, ExecPrecision::Full)
    }

    /// [`RedEngine::run_with`] at an explicit precision tier: `prec`
    /// selects how many low input bits every tap VMM drops (see
    /// [`ExecPrecision`]). Metering is over the untruncated gathered
    /// pixels, so [`ExecutionStats`] are identical across tiers — the
    /// tier narrows the conversion-phase window, not the zero-skipping
    /// schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run_with_at(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut RedScratch,
        prec: ExecPrecision,
    ) -> Result<Execution, ArchError> {
        check_input(&self.layer, input)?;
        let kw = self.layer.spec().kernel_w();
        let geom = self.layer.output_geometry();
        let m = self.layer.filters();

        let mut output = FeatureMap::<i64>::zeros(geom.height, geom.width, m);
        let mut stats = self.base_stats();

        for ((u, v), gathers) in self.plan.iter() {
            scratch.acc.fill(0);
            for g in gathers {
                let px = input.pixel(g.x as usize, g.y as usize);
                Self::meter_gather(&mut stats, px, m);
                let (i, j) = (g.slot as usize / kw, g.slot as usize % kw);
                self.sct
                    .eval_tap_into_at(i, j, px, &mut scratch.taps, &mut scratch.partial, prec);
                for (o, &q) in scratch.acc.iter_mut().zip(&scratch.partial) {
                    *o += q;
                }
            }
            output.pixel_mut(u, v).copy_from_slice(&scratch.acc);
            stats.output_pixels += 1;
        }
        Ok(Execution { output, stats })
    }
}

impl DeconvEngine for RedEngine {
    fn design(&self) -> Design {
        Design::Red {
            policy: match self.sct.layout() {
                SctLayout::Full => RedLayoutPolicy::AlwaysFull,
                SctLayout::Halved => RedLayoutPolicy::AlwaysHalved,
            },
        }
    }

    fn layer(&self) -> &LayerShape {
        &self.layer
    }

    fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError> {
        self.run_with(input, &mut self.make_scratch())
    }

    /// Batched execution: when the sub-crossbars are large enough for
    /// batched VMMs to pay ([`SubCrossbarTensor::batch_pays`] — blocked
    /// exact on ideal crossbars, phase-major analog over the
    /// effective-current plane otherwise), the plan is replayed
    /// pixel-major: each gather's input pixel is collected across the
    /// whole batch and driven through the tap's sub-crossbar once via
    /// [`SubCrossbarTensor::eval_tap_batch_into`]. Smaller sub-crossbars
    /// take the per-image loop with shared scratch. Bit-exact against
    /// per-input [`DeconvEngine::run`] either way.
    fn run_batch(&self, inputs: &[FeatureMap<i64>]) -> Result<Vec<Execution>, ArchError> {
        if inputs.len() <= 1 || !self.sct.batch_pays() {
            let mut scratch = self.make_scratch();
            return inputs
                .iter()
                .map(|input| self.run_with(input, &mut scratch))
                .collect();
        }
        self.run_batch_pixel_major(inputs, ExecPrecision::Full)
    }
}

impl RedEngine {
    /// [`DeconvEngine::run_batch`] with caller-provided scratch: the
    /// per-image fallback below the batched-tap threshold reuses
    /// `scratch` instead of allocating a fresh one per call, so a serving
    /// loop issuing many small batches stays allocation-free in steady
    /// state. Above the threshold this is exactly `run_batch`. Bit-exact
    /// against both either way.
    ///
    /// # Errors
    ///
    /// As [`DeconvEngine::run_batch`].
    pub fn run_batch_with(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut RedScratch,
    ) -> Result<Vec<Execution>, ArchError> {
        self.run_batch_with_at(inputs, scratch, ExecPrecision::Full)
    }

    /// [`RedEngine::run_batch_with`] at an explicit precision tier (see
    /// [`RedEngine::run_with_at`]).
    ///
    /// # Errors
    ///
    /// As [`DeconvEngine::run_batch`].
    pub fn run_batch_with_at(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut RedScratch,
        prec: ExecPrecision,
    ) -> Result<Vec<Execution>, ArchError> {
        if inputs.len() <= 1 || !self.sct.batch_pays() {
            return inputs
                .iter()
                .map(|input| self.run_with_at(input, scratch, prec))
                .collect();
        }
        self.run_batch_pixel_major(inputs, prec)
    }

    /// The paying pixel-major batched-tap path (shared by `run_batch`
    /// and `run_batch_with_at`).
    fn run_batch_pixel_major(
        &self,
        inputs: &[FeatureMap<i64>],
        prec: ExecPrecision,
    ) -> Result<Vec<Execution>, ArchError> {
        for input in inputs {
            check_input(&self.layer, input)?;
        }
        let n = inputs.len();
        let kw = self.layer.spec().kernel_w();
        let geom = self.layer.output_geometry();
        let m = self.layer.filters();
        let c = self.layer.channels();

        let mut outputs: Vec<FeatureMap<i64>> = inputs
            .iter()
            .map(|_| FeatureMap::zeros(geom.height, geom.width, m))
            .collect();
        let mut stats = vec![self.base_stats(); n];
        let mut taps = TapScratch::new();
        let mut pixels = vec![0i64; n * c];
        let mut partials = vec![0i64; n * m];
        let mut accs = vec![0i64; n * m];

        for ((u, v), gathers) in self.plan.iter() {
            accs.fill(0);
            for g in gathers {
                for (k, (input, st)) in inputs.iter().zip(&mut stats).enumerate() {
                    let px = input.pixel(g.x as usize, g.y as usize);
                    Self::meter_gather(st, px, m);
                    pixels[k * c..(k + 1) * c].copy_from_slice(px);
                }
                let (i, j) = (g.slot as usize / kw, g.slot as usize % kw);
                self.sct
                    .eval_tap_batch_into_at(i, j, &pixels, n, &mut taps, &mut partials, prec);
                for (o, &q) in accs.iter_mut().zip(&partials) {
                    *o += q;
                }
            }
            for (k, output) in outputs.iter_mut().enumerate() {
                output
                    .pixel_mut(u, v)
                    .copy_from_slice(&accs[k * m..(k + 1) * m]);
            }
            for st in &mut stats {
                st.output_pixels += 1;
            }
        }
        Ok(outputs
            .into_iter()
            .zip(stats)
            .map(|(output, stats)| Execution { output, stats })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::deconv::deconv_direct;

    fn setup(
        k: usize,
        s: usize,
        p: usize,
        op: usize,
        ih: usize,
        c: usize,
        m: usize,
    ) -> (LayerShape, Kernel<i64>, FeatureMap<i64>) {
        let spec = red_tensor::DeconvSpec::with_output_padding(k, k, s, p, op).unwrap();
        let layer = LayerShape::with_spec(ih, ih, c, m, spec).unwrap();
        let kernel = Kernel::from_fn(k, k, c, m, |i, j, cc, mm| {
            ((i * 41 + j * 17 + cc * 5 + mm * 3) % 200) as i64 - 99
        });
        let input = FeatureMap::from_fn(ih, ih, c, |h, w, cc| {
            ((h * 11 + w * 3 + cc) % 60) as i64 - 25
        });
        (layer, kernel, input)
    }

    #[test]
    fn matches_golden_deconv_full_layout() {
        for (k, s, p, op, ih) in [
            (3, 2, 0, 0, 3),
            (4, 2, 1, 0, 4),
            (5, 2, 2, 1, 4),
            (4, 4, 0, 0, 3),
            (3, 1, 0, 0, 4), // stride 1: single mode
        ] {
            let (layer, kernel, input) = setup(k, s, p, op, ih, 4, 3);
            let engine = RedEngine::new(
                &XbarConfig::ideal(),
                &layer,
                &kernel,
                RedLayoutPolicy::AlwaysFull,
            )
            .unwrap();
            let exec = engine.run(&input).unwrap();
            let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
            assert_eq!(exec.output, golden, "k={k} s={s} p={p} op={op}");
        }
    }

    #[test]
    fn matches_golden_deconv_halved_layout() {
        for (k, s, p, op, ih) in [(4, 2, 1, 0, 4), (5, 2, 2, 1, 4), (4, 4, 0, 0, 5)] {
            let (layer, kernel, input) = setup(k, s, p, op, ih, 3, 2);
            let engine = RedEngine::new(
                &XbarConfig::ideal(),
                &layer,
                &kernel,
                RedLayoutPolicy::AlwaysHalved,
            )
            .unwrap();
            assert_eq!(engine.layout(), SctLayout::Halved);
            let exec = engine.run(&input).unwrap();
            let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
            assert_eq!(exec.output, golden, "halved k={k} s={s}");
        }
    }

    #[test]
    fn cycle_count_is_stride_squared_fewer() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let engine = RedEngine::new(
            &XbarConfig::ideal(),
            &layer,
            &kernel,
            RedLayoutPolicy::AlwaysFull,
        )
        .unwrap();
        let exec = engine.run(&input).unwrap();
        // OH*OW / s^2 = 64/4.
        assert_eq!(exec.stats.cycles, 16);
        // Halved doubles it.
        let engine = RedEngine::new(
            &XbarConfig::ideal(),
            &layer,
            &kernel,
            RedLayoutPolicy::AlwaysHalved,
        )
        .unwrap();
        assert_eq!(engine.run(&input).unwrap().stats.cycles, 32);
    }

    #[test]
    fn zero_skipping_performs_only_nonzero_work() {
        // Dense input: RED's non-zero row activations equal the
        // zero-padding engine's (it does the same real work), but RED's
        // total slots are ~s^2 smaller (it never drives padded zeros).
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let input = input.map(|v| if v == 0 { 1 } else { v }); // fully dense
        let red = RedEngine::new(
            &XbarConfig::ideal(),
            &layer,
            &kernel,
            RedLayoutPolicy::AlwaysFull,
        )
        .unwrap()
        .run(&input)
        .unwrap();
        let zp = crate::ZeroPaddingEngine::new(&XbarConfig::ideal(), &layer, &kernel)
            .unwrap()
            .run(&input)
            .unwrap();
        assert_eq!(
            red.stats.nonzero_row_activations,
            zp.stats.nonzero_row_activations
        );
        assert_eq!(red.stats.nonzero_macs, zp.stats.nonzero_macs);
        assert!(red.stats.total_row_slots < zp.stats.total_row_slots / 3);
    }

    #[test]
    fn run_batch_and_scratch_reuse_are_bit_exact() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 3, 2);
        let engine = RedEngine::new(
            &XbarConfig::ideal(),
            &layer,
            &kernel,
            RedLayoutPolicy::AlwaysHalved,
        )
        .unwrap();
        let inputs: Vec<_> = (0..3).map(|k| input.map(|v| v + k as i64)).collect();
        let batch = engine.run_batch(&inputs).unwrap();
        for (one, exec) in inputs.iter().zip(&batch) {
            let single = engine.run(one).unwrap();
            assert_eq!(single.output, exec.output);
            assert_eq!(single.stats, exec.stats);
        }
    }

    #[test]
    fn run_batch_batched_tap_path_matches_per_image_noisy() {
        // 256-channel 256-filter taps: each sub-crossbar's
        // effective-current plane is 256 x 2048 f64 = 4 MiB (8 MiB for
        // the halved layout's 2C-row pair arrays), so the batched analog
        // tap path engages in both layouts — including the halved
        // layout's zero-filled n x 2C staging — and results must stay
        // bit-exact vs per-image runs.
        let (layer, kernel, input) = setup(3, 2, 1, 0, 2, 256, 256);
        let cfg = XbarConfig::noisy(0.01, 0.0, 0.001, 23);
        for policy in [RedLayoutPolicy::AlwaysFull, RedLayoutPolicy::AlwaysHalved] {
            let engine = RedEngine::new(&cfg, &layer, &kernel, policy).unwrap();
            assert!(engine.sct().batch_pays());
            assert!(engine.sct().array(0).analog_batching_pays());
            let inputs: Vec<_> = (0..3).map(|k| input.map(|v| v + k as i64)).collect();
            let batch = engine.run_batch(&inputs).unwrap();
            for (one, exec) in inputs.iter().zip(&batch) {
                let single = engine.run(one).unwrap();
                assert_eq!(single.output, exec.output, "{policy:?}");
                assert_eq!(single.stats, exec.stats, "{policy:?}");
            }
        }
    }

    #[test]
    fn plan_covers_every_output_pixel_once() {
        let (layer, kernel, _) = setup(5, 2, 2, 1, 4, 3, 2);
        let engine = RedEngine::new(
            &XbarConfig::ideal(),
            &layer,
            &kernel,
            RedLayoutPolicy::AlwaysFull,
        )
        .unwrap();
        let geom = layer.output_geometry();
        assert_eq!(engine.plan().pixel_count(), geom.pixels());
        let mut seen = std::collections::HashSet::new();
        for ((u, v), _) in engine.plan().iter() {
            assert!(seen.insert((u, v)), "pixel ({u},{v}) planned twice");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 3, 2);
        let bad = Kernel::<i64>::zeros(4, 4, 3, 5);
        assert!(RedEngine::new(&XbarConfig::ideal(), &layer, &bad, RedLayoutPolicy::Auto).is_err());
        let engine =
            RedEngine::new(&XbarConfig::ideal(), &layer, &kernel, RedLayoutPolicy::Auto).unwrap();
        assert!(engine.run(&FeatureMap::<i64>::zeros(4, 4, 2)).is_err());
    }

    #[test]
    fn design_reports_resolved_layout() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 3, 2);
        let engine =
            RedEngine::new(&XbarConfig::ideal(), &layer, &kernel, RedLayoutPolicy::Auto).unwrap();
        assert_eq!(engine.layout(), SctLayout::Full);
        assert_eq!(engine.sct().sub_crossbars(), 16);
        assert!(matches!(engine.design(), Design::Red { .. }));
    }
}
