//! Functional engines: cycle-enumerated executions of each design's
//! dataflow through simulated crossbars.
//!
//! Every engine consumes the same `(kernel, layer)` pair and produces a
//! bit-exact deconvolution output plus measured [`ExecutionStats`]. The
//! engines are verified three ways:
//!
//! 1. against the `red-tensor` golden algorithms (functional correctness);
//! 2. against each other (all three designs compute the same function);
//! 3. against [`crate::DesignGeometry`] (measured cycles/activations must
//!    equal the closed forms the cost model prices).

mod conv;
mod padding_free;
mod red;
mod window;
mod zero_padding;

pub use conv::{ConvEngine, ConvScratch};
pub use padding_free::{PaddingFreeEngine, PfScratch};
pub use red::{RedEngine, RedScratch};
pub use zero_padding::{ZeroPaddingEngine, ZpScratch};

use crate::{ArchError, Design, ExecutionStats};
use red_tensor::{FeatureMap, Kernel, LayerShape};

/// Result of running one layer through an engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The deconvolution output feature map.
    pub output: FeatureMap<i64>,
    /// Measured dataflow statistics.
    pub stats: ExecutionStats,
}

/// A functional deconvolution accelerator engine.
pub trait DeconvEngine {
    /// The design this engine implements.
    fn design(&self) -> Design;

    /// The layer this engine was programmed for.
    fn layer(&self) -> &LayerShape;

    /// Executes the layer on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] when the input shape does not
    /// match the layer, and propagates crossbar errors.
    fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError>;

    /// Executes the layer on every input of a batch, bit-exact against
    /// per-input [`DeconvEngine::run`] calls.
    ///
    /// The default forwards to `run`; engines override it to reuse scratch
    /// buffers across the batch and to block the exact VMM path over all
    /// images at once (weights are read from cache once per block instead
    /// of once per image).
    ///
    /// # Errors
    ///
    /// As [`DeconvEngine::run`]; the first failing input aborts the batch.
    fn run_batch(&self, inputs: &[FeatureMap<i64>]) -> Result<Vec<Execution>, ArchError> {
        inputs.iter().map(|input| self.run(input)).collect()
    }
}

pub(crate) fn check_input(layer: &LayerShape, input: &FeatureMap<i64>) -> Result<(), ArchError> {
    if input.height() != layer.input_h()
        || input.width() != layer.input_w()
        || input.channels() != layer.channels()
    {
        return Err(ArchError::InputMismatch {
            detail: format!(
                "input {}x{}x{} vs layer {}x{}x{}",
                input.height(),
                input.width(),
                input.channels(),
                layer.input_h(),
                layer.input_w(),
                layer.channels()
            ),
        });
    }
    Ok(())
}

pub(crate) fn check_kernel(layer: &LayerShape, kernel: &Kernel<i64>) -> Result<(), ArchError> {
    if kernel.kernel_h() != layer.spec().kernel_h()
        || kernel.kernel_w() != layer.spec().kernel_w()
        || kernel.channels() != layer.channels()
        || kernel.filters() != layer.filters()
    {
        return Err(ArchError::KernelMismatch {
            detail: format!(
                "kernel {}x{}x{}x{} vs layer {}x{}x{}x{}",
                kernel.kernel_h(),
                kernel.kernel_w(),
                kernel.channels(),
                kernel.filters(),
                layer.spec().kernel_h(),
                layer.spec().kernel_w(),
                layer.channels(),
                layer.filters()
            ),
        });
    }
    Ok(())
}
