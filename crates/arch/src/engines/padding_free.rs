use super::{check_input, check_kernel, DeconvEngine, Execution};
use crate::{ArchError, Design, ExecutionStats};
use red_tensor::{FeatureMap, Kernel, LayerShape};
use red_xbar::{CrossbarArray, ExecPrecision, VmmScratch, XbarConfig};

/// The padding-free design (paper Fig. 3(b)): input-stationary mapping onto
/// one `C × (KH·KW·M)` crossbar. Each real input pixel streams once
/// (`IH·IW` cycles), producing all `KH·KW·M` partial products at once;
/// dedicated output periphery then overlap-adds them into the full scatter
/// tensor and crops — Algorithm 2's add/crop steps, the "add-on
/// operations" that cost this design its output periphery.
///
/// The per-tap scatter offsets into the overlap-add accumulator depend
/// only on the layer geometry, so they are resolved once at construction
/// and the accumulator itself lives in reusable scratch — execution
/// allocates nothing per pixel.
#[derive(Debug, Clone)]
pub struct PaddingFreeEngine {
    layer: LayerShape,
    array: CrossbarArray,
    /// Flat offset of tap `(i, j)`'s scatter target within the full
    /// accumulator, relative to the pixel base `((s·x)·FW + s·y)·M`.
    tap_offsets: Vec<usize>,
}

/// Reusable working memory for [`PaddingFreeEngine::run_with`]: the full
/// overlap-add scatter accumulator (`FH × FW × M`, zeroed per image), the
/// per-pixel partial-product buffer, and the analog-path VMM scratch.
#[derive(Debug, Clone)]
pub struct PfScratch {
    full: Vec<i64>,
    partials: Vec<i64>,
    vmm: VmmScratch,
}

impl PaddingFreeEngine {
    /// Programs the engine for `layer` with `kernel`.
    ///
    /// Column order is tap-major: column `(i·KW + j)·M + m` holds
    /// `W[i, j, ·, m]` (the scatter form — algebraically the rotated-kernel
    /// gather of Algorithm 2, see `red-tensor`'s equivalence tests).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::KernelMismatch`] when the kernel does not match
    /// the layer, and propagates programming errors.
    pub fn new(
        cfg: &XbarConfig,
        layer: &LayerShape,
        kernel: &Kernel<i64>,
    ) -> Result<Self, ArchError> {
        check_kernel(layer, kernel)?;
        let (kh, kw) = (kernel.kernel_h(), kernel.kernel_w());
        let (c, m) = (kernel.channels(), kernel.filters());
        let cols = kh * kw * m;
        let mut flat = vec![0i64; c * cols];
        for ch in 0..c {
            for i in 0..kh {
                for j in 0..kw {
                    let row = kernel.row(i, j, ch);
                    let base = ch * cols + (i * kw + j) * m;
                    flat[base..base + m].copy_from_slice(row);
                }
            }
        }
        let array = CrossbarArray::program_flat(cfg, c, cols, flat)?;
        let geom = layer.output_geometry();
        let tap_offsets = (0..kh * kw)
            .map(|t| ((t / kw) * geom.full_width + (t % kw)) * m)
            .collect();
        Ok(Self {
            layer: *layer,
            array,
            tap_offsets,
        })
    }

    /// The programmed crossbar (for inspection/tests).
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// Creates working memory for [`PaddingFreeEngine::run_with`].
    pub fn make_scratch(&self) -> PfScratch {
        let spec = self.layer.spec();
        let geom = self.layer.output_geometry();
        let m = self.layer.filters();
        PfScratch {
            full: vec![0i64; geom.full_height * geom.full_width * m],
            partials: vec![0i64; spec.taps() * m],
            vmm: VmmScratch::new(),
        }
    }

    /// Executes the layer on `input` with caller-provided scratch: the
    /// overlap-add accumulator and partial-product buffer are reused
    /// across images, and the only heap allocation per call is the output
    /// feature map itself.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run_with(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut PfScratch,
    ) -> Result<Execution, ArchError> {
        self.run_with_at(input, scratch, ExecPrecision::Full)
    }

    /// [`PaddingFreeEngine::run_with`] at an explicit precision tier:
    /// `prec` selects how many low input bits the crossbar drops per
    /// pixel VMM (see [`ExecPrecision`]). Metering is over the
    /// untruncated pixel, so [`ExecutionStats`] are identical across
    /// tiers.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run_with_at(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut PfScratch,
        prec: ExecPrecision,
    ) -> Result<Execution, ArchError> {
        check_input(&self.layer, input)?;
        let spec = self.layer.spec();
        let (kh, kw) = (spec.kernel_h(), spec.kernel_w());
        let s = spec.stride();
        let m = self.layer.filters();
        let geom = self.layer.output_geometry();

        // The overlap-add accumulator: the full scatter tensor the output
        // periphery materialises before cropping.
        scratch.full.fill(0);
        let mut stats = ExecutionStats::default();

        for x in 0..input.height() {
            for y in 0..input.width() {
                let px = input.pixel(x, y);
                Self::meter_pixel(&mut stats, px, kh * kw * m);
                self.array
                    .vmm_into_at(px, &mut scratch.vmm, &mut scratch.partials, prec);
                let base = ((s * x) * geom.full_width + s * y) * m;
                self.scatter(&scratch.partials, base, &mut scratch.full);
            }
        }

        stats.output_pixels = geom.pixels() as u64;
        Ok(Execution {
            output: self.crop(&scratch.full),
            stats,
        })
    }

    fn meter_pixel(stats: &mut ExecutionStats, px: &[i64], macs_per_nnz: usize) {
        let nnz = px.iter().filter(|v| **v != 0).count() as u128;
        stats.cycles += 1;
        stats.vector_ops += 1;
        stats.nonzero_row_activations += nnz;
        stats.total_row_slots += px.len() as u128;
        stats.nonzero_macs += nnz * macs_per_nnz as u128;
    }

    /// Overlap-adds one pixel's `KH·KW·M` partial products into the full
    /// accumulator at the given pixel base offset.
    fn scatter(&self, partials: &[i64], base: usize, full: &mut [i64]) {
        let m = self.layer.filters();
        for (t, &off) in self.tap_offsets.iter().enumerate() {
            let acc = &mut full[base + off..base + off + m];
            let src = &partials[t * m..(t + 1) * m];
            for (a, &v) in acc.iter_mut().zip(src) {
                *a += v;
            }
        }
    }

    /// Crop (and zero-extend when output_padding > padding).
    fn crop(&self, full: &[i64]) -> FeatureMap<i64> {
        let geom = self.layer.output_geometry();
        let m = self.layer.filters();
        let p = geom.crop_before;
        let mut output = FeatureMap::<i64>::zeros(geom.height, geom.width, m);
        for u in 0..geom.height.min(geom.full_height.saturating_sub(p)) {
            for v in 0..geom.width.min(geom.full_width.saturating_sub(p)) {
                let src = ((u + p) * geom.full_width + (v + p)) * m;
                output.pixel_mut(u, v).copy_from_slice(&full[src..src + m]);
            }
        }
        output
    }
}

impl DeconvEngine for PaddingFreeEngine {
    fn design(&self) -> Design {
        Design::PaddingFree
    }

    fn layer(&self) -> &LayerShape {
        &self.layer
    }

    fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError> {
        self.run_with(input, &mut self.make_scratch())
    }

    /// Batched execution: when the wide `C × (KH·KW·M)` array is large
    /// enough for batching to pay ([`CrossbarArray::vmm_batch_pays`] —
    /// cache-blocked exact on ideal crossbars, phase-major analog over
    /// the effective-current plane otherwise), every input pixel is
    /// gathered from the whole batch and multiplied through
    /// [`CrossbarArray::vmm_batch`], so the weights (or plane rows)
    /// stream from cache once per block instead of once per image.
    /// Smaller arrays fall back to per-image execution with shared
    /// scratch. Bit-exact against per-input [`DeconvEngine::run`] either
    /// way.
    fn run_batch(&self, inputs: &[FeatureMap<i64>]) -> Result<Vec<Execution>, ArchError> {
        if !self.array.vmm_batch_pays() {
            let mut scratch = self.make_scratch();
            return inputs
                .iter()
                .map(|input| self.run_with(input, &mut scratch))
                .collect();
        }
        self.run_batch_blocked(inputs, ExecPrecision::Full)
    }
}

impl PaddingFreeEngine {
    /// [`DeconvEngine::run_batch`] with caller-provided scratch: the
    /// per-image fallback below the batching threshold reuses `scratch`
    /// instead of allocating a fresh one per call, so a serving loop
    /// issuing many small batches stays allocation-free in steady state.
    /// Above the threshold this is exactly `run_batch`. Bit-exact against
    /// both either way.
    ///
    /// # Errors
    ///
    /// As [`DeconvEngine::run_batch`].
    pub fn run_batch_with(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut PfScratch,
    ) -> Result<Vec<Execution>, ArchError> {
        self.run_batch_with_at(inputs, scratch, ExecPrecision::Full)
    }

    /// [`PaddingFreeEngine::run_batch_with`] at an explicit precision
    /// tier (see [`PaddingFreeEngine::run_with_at`]).
    ///
    /// # Errors
    ///
    /// As [`DeconvEngine::run_batch`].
    pub fn run_batch_with_at(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut PfScratch,
        prec: ExecPrecision,
    ) -> Result<Vec<Execution>, ArchError> {
        if !self.array.vmm_batch_pays() {
            return inputs
                .iter()
                .map(|input| self.run_with_at(input, scratch, prec))
                .collect();
        }
        self.run_batch_blocked(inputs, prec)
    }

    /// The paying pixel-major batch path (shared by `run_batch` and
    /// `run_batch_with_at`).
    fn run_batch_blocked(
        &self,
        inputs: &[FeatureMap<i64>],
        prec: ExecPrecision,
    ) -> Result<Vec<Execution>, ArchError> {
        for input in inputs {
            check_input(&self.layer, input)?;
        }
        let n = inputs.len();
        let spec = self.layer.spec();
        let s = spec.stride();
        let c = self.layer.channels();
        let m = self.layer.filters();
        let cols = spec.taps() * m;
        let geom = self.layer.output_geometry();

        let full_len = geom.full_height * geom.full_width * m;
        let mut fulls = vec![0i64; n * full_len];
        let mut stats = vec![ExecutionStats::default(); n];
        let mut pixels = vec![0i64; n * c];
        let mut partials = vec![0i64; n * cols];
        let mut vmm = VmmScratch::new();

        for x in 0..self.layer.input_h() {
            for y in 0..self.layer.input_w() {
                for (k, (input, st)) in inputs.iter().zip(&mut stats).enumerate() {
                    let px = input.pixel(x, y);
                    Self::meter_pixel(st, px, cols);
                    pixels[k * c..(k + 1) * c].copy_from_slice(px);
                }
                self.array
                    .vmm_batch_at(&pixels, n, &mut vmm, &mut partials, prec);
                let base = ((s * x) * geom.full_width + s * y) * m;
                for (k, full) in fulls.chunks_exact_mut(full_len).enumerate() {
                    self.scatter(&partials[k * cols..(k + 1) * cols], base, full);
                }
            }
        }

        Ok(fulls
            .chunks_exact(full_len)
            .zip(stats)
            .map(|(full, mut stats)| {
                stats.output_pixels = geom.pixels() as u64;
                Execution {
                    output: self.crop(full),
                    stats,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::deconv::deconv_direct;

    fn setup(
        k: usize,
        s: usize,
        p: usize,
        op: usize,
        ih: usize,
        c: usize,
        m: usize,
    ) -> (LayerShape, Kernel<i64>, FeatureMap<i64>) {
        let spec = red_tensor::DeconvSpec::with_output_padding(k, k, s, p, op).unwrap();
        let layer = LayerShape::with_spec(ih, ih, c, m, spec).unwrap();
        let kernel = Kernel::from_fn(k, k, c, m, |i, j, cc, mm| {
            ((i * 29 + j * 13 + cc * 5 + mm * 3) % 200) as i64 - 100
        });
        let input = FeatureMap::from_fn(ih, ih, c, |h, w, cc| {
            ((h * 7 + w * 3 + cc) % 40) as i64 - 15
        });
        (layer, kernel, input)
    }

    #[test]
    fn matches_golden_deconv() {
        for (k, s, p, op, ih) in [
            (4, 2, 1, 0, 4),
            (5, 2, 2, 1, 4),
            (3, 1, 0, 0, 5),
            (3, 3, 0, 2, 3),
        ] {
            let (layer, kernel, input) = setup(k, s, p, op, ih, 5, 3);
            let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
            let exec = engine.run(&input).unwrap();
            let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
            assert_eq!(exec.output, golden, "k={k} s={s} p={p} op={op}");
        }
    }

    #[test]
    fn cycle_count_is_input_pixels() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 6, 4, 3);
        // Force a fully dense input (no incidental zero values).
        let input = input.map(|v| if v == 0 { 1 } else { v });
        let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let exec = engine.run(&input).unwrap();
        assert_eq!(exec.stats.cycles, 36);
        // Dense input: no zero slots at all — padding-free skips the
        // inserted zeros entirely.
        assert_eq!(exec.stats.zero_slot_fraction(), 0.0);
    }

    #[test]
    fn run_batch_matches_per_image_runs_ideal_and_noisy() {
        let (layer, kernel, input) = setup(5, 2, 2, 1, 4, 5, 3);
        let inputs: Vec<_> = (0..3).map(|k| input.map(|v| v + 2 * k as i64)).collect();
        for cfg in [XbarConfig::ideal(), XbarConfig::noisy(0.01, 0.0, 0.001, 23)] {
            let engine = PaddingFreeEngine::new(&cfg, &layer, &kernel).unwrap();
            let batch = engine.run_batch(&inputs).unwrap();
            for (one, exec) in inputs.iter().zip(&batch) {
                let single = engine.run(one).unwrap();
                assert_eq!(single.output, exec.output);
                assert_eq!(single.stats, exec.stats);
            }
        }
    }

    #[test]
    fn run_batch_pixel_major_path_matches_per_image() {
        // 128 channels x (16 taps x 64 filters) = 1 MiB of weights:
        // crosses the blocking threshold, exercising the batched gather +
        // vmm_batch path. The noisy twin's effective-current plane is 8x
        // that, exercising the phase-major analog batch instead.
        let (layer, kernel, input) = setup(4, 2, 1, 0, 4, 128, 64);
        for cfg in [
            XbarConfig::ideal(),
            XbarConfig::noisy(0.01, 0.0005, 0.0, 77),
        ] {
            let engine = PaddingFreeEngine::new(&cfg, &layer, &kernel).unwrap();
            assert!(engine.array().vmm_batch_pays());
            let inputs: Vec<_> = (0..2).map(|k| input.map(|v| v - k as i64)).collect();
            let batch = engine.run_batch(&inputs).unwrap();
            for (one, exec) in inputs.iter().zip(&batch) {
                let single = engine.run(one).unwrap();
                assert_eq!(single.output, exec.output);
                assert_eq!(single.stats, exec.stats);
            }
        }
    }

    #[test]
    fn array_has_khkwm_columns() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 5, 3);
        let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert_eq!(engine.array().rows(), 5);
        assert_eq!(engine.array().weight_cols(), 16 * 3);
        assert_eq!(engine.design(), Design::PaddingFree);
    }

    #[test]
    fn rejects_bad_shapes() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 5, 3);
        let bad = Kernel::<i64>::zeros(4, 4, 5, 2);
        assert!(PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &bad).is_err());
        let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert!(engine.run(&FeatureMap::<i64>::zeros(4, 4, 2)).is_err());
    }
}
