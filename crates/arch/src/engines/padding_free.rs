use super::{check_input, check_kernel, DeconvEngine, Execution};
use crate::{ArchError, Design, ExecutionStats};
use red_tensor::{FeatureMap, Kernel, LayerShape};
use red_xbar::{CrossbarArray, XbarConfig};

/// The padding-free design (paper Fig. 3(b)): input-stationary mapping onto
/// one `C × (KH·KW·M)` crossbar. Each real input pixel streams once
/// (`IH·IW` cycles), producing all `KH·KW·M` partial products at once;
/// dedicated output periphery then overlap-adds them into the full scatter
/// tensor and crops — Algorithm 2's add/crop steps, the "add-on
/// operations" that cost this design its output periphery.
#[derive(Debug, Clone)]
pub struct PaddingFreeEngine {
    layer: LayerShape,
    array: CrossbarArray,
}

impl PaddingFreeEngine {
    /// Programs the engine for `layer` with `kernel`.
    ///
    /// Column order is tap-major: column `(i·KW + j)·M + m` holds
    /// `W[i, j, ·, m]` (the scatter form — algebraically the rotated-kernel
    /// gather of Algorithm 2, see `red-tensor`'s equivalence tests).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::KernelMismatch`] when the kernel does not match
    /// the layer, and propagates programming errors.
    pub fn new(
        cfg: &XbarConfig,
        layer: &LayerShape,
        kernel: &Kernel<i64>,
    ) -> Result<Self, ArchError> {
        check_kernel(layer, kernel)?;
        let (kh, kw) = (kernel.kernel_h(), kernel.kernel_w());
        let (c, m) = (kernel.channels(), kernel.filters());
        let cols = kh * kw * m;
        let mut flat = vec![0i64; c * cols];
        for ch in 0..c {
            for i in 0..kh {
                for j in 0..kw {
                    let row = kernel.row(i, j, ch);
                    let base = ch * cols + (i * kw + j) * m;
                    flat[base..base + m].copy_from_slice(row);
                }
            }
        }
        let array = CrossbarArray::program_flat(cfg, c, cols, flat)?;
        Ok(Self {
            layer: *layer,
            array,
        })
    }

    /// The programmed crossbar (for inspection/tests).
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }
}

impl DeconvEngine for PaddingFreeEngine {
    fn design(&self) -> Design {
        Design::PaddingFree
    }

    fn layer(&self) -> &LayerShape {
        &self.layer
    }

    fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError> {
        check_input(&self.layer, input)?;
        let spec = self.layer.spec();
        let (kh, kw) = (spec.kernel_h(), spec.kernel_w());
        let s = spec.stride();
        let m = self.layer.filters();
        let geom = self.layer.output_geometry();

        // The overlap-add accumulator: the full scatter tensor the output
        // periphery materialises before cropping.
        let mut full = FeatureMap::<i64>::zeros(geom.full_height, geom.full_width, m);
        let mut stats = ExecutionStats::default();

        for x in 0..input.height() {
            for y in 0..input.width() {
                let px = input.pixel(x, y);
                let nnz = px.iter().filter(|v| **v != 0).count() as u128;
                stats.cycles += 1;
                stats.vector_ops += 1;
                stats.nonzero_row_activations += nnz;
                stats.total_row_slots += px.len() as u128;
                stats.nonzero_macs += nnz * (kh * kw * m) as u128;

                let partials = self.array.vmm(px);
                for i in 0..kh {
                    for j in 0..kw {
                        let acc = full.pixel_mut(s * x + i, s * y + j);
                        let src = &partials[(i * kw + j) * m..(i * kw + j + 1) * m];
                        for (a, &v) in acc.iter_mut().zip(src) {
                            *a += v;
                        }
                    }
                }
            }
        }

        // Crop (and zero-extend when output_padding > padding).
        let p = geom.crop_before;
        let mut output = FeatureMap::<i64>::zeros(geom.height, geom.width, m);
        for u in 0..geom.height.min(geom.full_height.saturating_sub(p)) {
            for v in 0..geom.width.min(geom.full_width.saturating_sub(p)) {
                output
                    .pixel_mut(u, v)
                    .copy_from_slice(full.pixel(u + p, v + p));
            }
        }
        stats.output_pixels = geom.pixels() as u64;
        Ok(Execution { output, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::deconv::deconv_direct;

    fn setup(
        k: usize,
        s: usize,
        p: usize,
        op: usize,
        ih: usize,
        c: usize,
        m: usize,
    ) -> (LayerShape, Kernel<i64>, FeatureMap<i64>) {
        let spec = red_tensor::DeconvSpec::with_output_padding(k, k, s, p, op).unwrap();
        let layer = LayerShape::with_spec(ih, ih, c, m, spec).unwrap();
        let kernel = Kernel::from_fn(k, k, c, m, |i, j, cc, mm| {
            ((i * 29 + j * 13 + cc * 5 + mm * 3) % 200) as i64 - 100
        });
        let input = FeatureMap::from_fn(ih, ih, c, |h, w, cc| {
            ((h * 7 + w * 3 + cc) % 40) as i64 - 15
        });
        (layer, kernel, input)
    }

    #[test]
    fn matches_golden_deconv() {
        for (k, s, p, op, ih) in [
            (4, 2, 1, 0, 4),
            (5, 2, 2, 1, 4),
            (3, 1, 0, 0, 5),
            (3, 3, 0, 2, 3),
        ] {
            let (layer, kernel, input) = setup(k, s, p, op, ih, 5, 3);
            let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
            let exec = engine.run(&input).unwrap();
            let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
            assert_eq!(exec.output, golden, "k={k} s={s} p={p} op={op}");
        }
    }

    #[test]
    fn cycle_count_is_input_pixels() {
        let (layer, kernel, input) = setup(4, 2, 1, 0, 6, 4, 3);
        // Force a fully dense input (no incidental zero values).
        let input = input.map(|v| if v == 0 { 1 } else { v });
        let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        let exec = engine.run(&input).unwrap();
        assert_eq!(exec.stats.cycles, 36);
        // Dense input: no zero slots at all — padding-free skips the
        // inserted zeros entirely.
        assert_eq!(exec.stats.zero_slot_fraction(), 0.0);
    }

    #[test]
    fn array_has_khkwm_columns() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 5, 3);
        let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert_eq!(engine.array().rows(), 5);
        assert_eq!(engine.array().weight_cols(), 16 * 3);
        assert_eq!(engine.design(), Design::PaddingFree);
    }

    #[test]
    fn rejects_bad_shapes() {
        let (layer, kernel, _) = setup(4, 2, 1, 0, 4, 5, 3);
        let bad = Kernel::<i64>::zeros(4, 4, 5, 2);
        assert!(PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &bad).is_err());
        let engine = PaddingFreeEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
        assert!(engine.run(&FeatureMap::<i64>::zeros(4, 4, 2)).is_err());
    }
}
