//! The latency / energy / area cost model (paper §IV, Eq. 3 and Eq. 4).
//!
//! Costs are assembled from the `red-circuit` component models over the
//! closed-form [`DesignGeometry`] of each design, with the paper's
//! Table II breakdown:
//!
//! ```text
//! L_total = (L_wd + L_bd)_array + (L_dec + L_mux + L_rc + L_sa)_periphery   (Eq. 3)
//! E_total = (E_c + E_wd + E_bd)_array + (E_dec + E_mux + E_rc + E_sa)_pp   (Eq. 4)
//! ```
//!
//! Two extra components extend the taxonomy: [`Component::Accumulator`]
//! (the padding-free design's overlap-add/crop unit — the "add-on
//! periphery" the paper charges against that design) and
//! [`Component::Control`] (per-instance registers/control — the cost of
//! splitting a crossbar apart, which the paper charges against RED's
//! area). Both group under periphery.

use crate::{ArchError, Design, DesignGeometry};
use red_circuit::{
    BitlineDriver, CircuitParams, ColumnMux, OutputAccumulator, ReadCircuit, RowDecoder,
    ShiftAdder, WordlineDriver,
};
use red_device::{CellConfig, TechnologyParams};
use red_tensor::LayerShape;
use serde::{Deserialize, Serialize};

/// One entry of the cost breakdown (paper Table II plus two extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// In-array multiply-accumulate (cell read) energy — `c` in Table II.
    Computation,
    /// Wordline driving — `wd`.
    WordlineDriving,
    /// Bitline driving — `bd`.
    BitlineDriving,
    /// Row decoder / input select — `dec`.
    Decoder,
    /// Column multiplexer — `mux`.
    Mux,
    /// Read circuit (integrate & fire) — `rc`.
    ReadCircuit,
    /// Shift adder — `sa`.
    ShiftAdder,
    /// Overlap-add + crop unit (padding-free only; our extension of the
    /// taxonomy, grouped under periphery).
    Accumulator,
    /// Per-instance registers and control (grouped under periphery).
    Control,
}

impl Component {
    /// All components in display order.
    pub const ALL: [Component; 9] = [
        Component::Computation,
        Component::WordlineDriving,
        Component::BitlineDriving,
        Component::Decoder,
        Component::Mux,
        Component::ReadCircuit,
        Component::ShiftAdder,
        Component::Accumulator,
        Component::Control,
    ];

    /// `true` for the array-side components of Table II.
    pub fn is_array(&self) -> bool {
        matches!(
            self,
            Component::Computation | Component::WordlineDriving | Component::BitlineDriving
        )
    }

    /// The paper's abbreviation (Table II); extensions use ours.
    pub fn abbr(&self) -> &'static str {
        match self {
            Component::Computation => "c",
            Component::WordlineDriving => "wd",
            Component::BitlineDriving => "bd",
            Component::Decoder => "dec",
            Component::Mux => "mux",
            Component::ReadCircuit => "rc",
            Component::ShiftAdder => "sa",
            Component::Accumulator => "acc",
            Component::Control => "ctl",
        }
    }

    fn index(&self) -> usize {
        Component::ALL
            .iter()
            .position(|c| c == self)
            .expect("component in ALL")
    }
}

/// Full latency/energy/area breakdown of one design executing one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// The design evaluated.
    pub design: Design,
    /// The layer evaluated.
    pub layer: LayerShape,
    /// The analytic geometry the costs were derived from.
    pub geometry: DesignGeometry,
    latency_ns: [f64; 9],
    energy_pj: [f64; 9],
    area_um2: [f64; 9],
}

impl CostReport {
    /// Total layer latency per component, in ns.
    pub fn latency_ns(&self, c: Component) -> f64 {
        self.latency_ns[c.index()]
    }

    /// Layer energy per component, in pJ.
    pub fn energy_pj(&self, c: Component) -> f64 {
        self.energy_pj[c.index()]
    }

    /// Area per component, in µm².
    pub fn area_um2(&self, c: Component) -> f64 {
        self.area_um2[c.index()]
    }

    /// Total layer latency (Eq. 3 summed), in ns.
    pub fn total_latency_ns(&self) -> f64 {
        self.latency_ns.iter().sum()
    }

    /// Array-side latency (`(L_wd + L_bd)_a`), in ns.
    pub fn array_latency_ns(&self) -> f64 {
        self.sum_latency(true)
    }

    /// Periphery latency (`(L_dec + L_mux + L_rc + L_sa)_pp`), in ns.
    pub fn periphery_latency_ns(&self) -> f64 {
        self.sum_latency(false)
    }

    /// Total layer energy (Eq. 4 summed), in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy_pj.iter().sum()
    }

    /// Array-side energy (`(E_c + E_wd + E_bd)_a`), in pJ.
    pub fn array_energy_pj(&self) -> f64 {
        self.sum_energy(true)
    }

    /// Periphery energy, in pJ.
    pub fn periphery_energy_pj(&self) -> f64 {
        self.sum_energy(false)
    }

    /// Total area, in µm².
    pub fn total_area_um2(&self) -> f64 {
        self.area_um2.iter().sum()
    }

    /// Array (cell + driver) area, in µm².
    pub fn array_area_um2(&self) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.is_array())
            .map(|c| self.area_um2(*c))
            .sum()
    }

    /// Periphery area, in µm².
    pub fn periphery_area_um2(&self) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| !c.is_array())
            .map(|c| self.area_um2(*c))
            .sum()
    }

    /// Per-cycle latency, in ns.
    pub fn cycle_time_ns(&self) -> f64 {
        self.total_latency_ns() / self.geometry.cycles as f64
    }

    /// Latency speedup of `self` relative to `baseline` (>1 means `self`
    /// is faster).
    pub fn speedup_vs(&self, baseline: &CostReport) -> f64 {
        baseline.total_latency_ns() / self.total_latency_ns()
    }

    /// Fractional energy saving of `self` relative to `baseline`
    /// (0.25 = saves 25 %).
    pub fn energy_saving_vs(&self, baseline: &CostReport) -> f64 {
        1.0 - self.total_energy_pj() / baseline.total_energy_pj()
    }

    /// Fractional area overhead of `self` relative to `baseline`
    /// (0.21 = 21 % larger).
    pub fn area_overhead_vs(&self, baseline: &CostReport) -> f64 {
        self.total_area_um2() / baseline.total_area_um2() - 1.0
    }

    /// Energy spent in the components that scale with the input
    /// conversion-phase count (Computation, WordlineDriving,
    /// BitlineDriving, ReadCircuit — everything multiplied by
    /// `input_bits` or `input_bits / 2` in Eq. 4), in pJ. A precision
    /// tier that streams fewer input bits shrinks exactly this share;
    /// the remainder ([`CostReport::static_energy_pj`]) is per-cycle
    /// and tier-independent.
    pub fn phase_gated_energy_pj(&self) -> f64 {
        [
            Component::Computation,
            Component::WordlineDriving,
            Component::BitlineDriving,
            Component::ReadCircuit,
        ]
        .iter()
        .map(|c| self.energy_pj(*c))
        .sum()
    }

    /// Energy in the per-cycle components a reduced-precision tier does
    /// not shrink (total minus [`CostReport::phase_gated_energy_pj`]),
    /// in pJ.
    pub fn static_energy_pj(&self) -> f64 {
        self.total_energy_pj() - self.phase_gated_energy_pj()
    }

    /// Total layer energy when only `live_bits` of the configured
    /// `input_bits` actually stream (a brownout tier's repriced energy):
    /// static share plus the phase-gated share scaled by
    /// `live_bits / input_bits`, in pJ. `live_bits` is clamped to the
    /// configured width; full precision returns
    /// [`CostReport::total_energy_pj`] exactly.
    pub fn energy_at_live_bits_pj(&self, live_bits: u32, input_bits: u32) -> f64 {
        let full = input_bits.max(1);
        let ratio = f64::from(live_bits.min(full)) / f64::from(full);
        self.static_energy_pj() + self.phase_gated_energy_pj() * ratio
    }

    fn sum_latency(&self, array: bool) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.is_array() == array)
            .map(|c| self.latency_ns(*c))
            .sum()
    }

    fn sum_energy(&self, array: bool) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.is_array() == array)
            .map(|c| self.energy_pj(*c))
            .sum()
    }
}

/// The configured cost model: technology + circuit + cell parameters.
///
/// # Example
///
/// ```
/// use red_arch::{CostModel, Design};
/// use red_tensor::LayerShape;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = CostModel::paper_default();
/// let layer = LayerShape::new(4, 4, 64, 32, 4, 4, 2, 1)?;
/// let report = model.evaluate(Design::ZeroPadding, &layer)?;
/// assert_eq!(report.geometry.cycles, 64);
/// assert!(report.total_latency_ns() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    tech: TechnologyParams,
    params: CircuitParams,
    cell: CellConfig,
}

impl CostModel {
    /// The paper's configuration: 65 nm, 2 GHz, 1T1R 2-bit cells, with the
    /// calibrated circuit constants (see `tests/paper_bands.rs`).
    pub fn paper_default() -> Self {
        Self {
            tech: TechnologyParams::node_65nm(),
            params: CircuitParams::default(),
            cell: CellConfig::default(),
        }
    }

    /// A model with custom parameters.
    pub fn new(tech: TechnologyParams, params: CircuitParams, cell: CellConfig) -> Self {
        Self { tech, params, cell }
    }

    /// The technology parameters in use.
    pub fn tech(&self) -> &TechnologyParams {
        &self.tech
    }

    /// The circuit parameters in use.
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// The cell configuration in use.
    pub fn cell(&self) -> &CellConfig {
        &self.cell
    }

    /// Bit-slices per weight under this model.
    pub fn cells_per_weight(&self) -> usize {
        self.params.cells_per_weight(self.cell.bits_per_cell)
    }

    /// Models re-programming `cells` ReRAM cells with write-and-verify:
    /// per-cell write time and energy come from the [`CellConfig`]
    /// (`write_pulse_ns · avg_write_pulses` and the corresponding pulse
    /// energy), and cells are written serially — one wordline/bitline
    /// pair driven at a time, as the shared write drivers of a 1T1R tile
    /// require. This is the repair cost a self-healing fleet pays to
    /// bring a drifted or struck replica back to `Active`.
    pub fn reprogram_cost(&self, cells: u64) -> ReprogramCost {
        ReprogramCost {
            cells,
            latency_ns: cells as f64 * self.cell.write_time_ns(),
            energy_pj: cells as f64 * self.cell.write_energy_pj(),
        }
    }

    /// Prices `design` executing `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the geometry cannot be derived.
    pub fn evaluate(&self, design: Design, layer: &LayerShape) -> Result<CostReport, ArchError> {
        let g = DesignGeometry::derive(design, layer, self.cells_per_weight())?;
        Ok(self.price(g))
    }

    /// Prices `design` executing `layer` with inputs of the given
    /// activation density (fraction of non-zero values, `1.0` = the
    /// paper's dense assumption).
    ///
    /// Post-ReLU feature maps are typically ~50 % zero; zero activations
    /// skip their wordline pulses and cell currents in *every* design, so
    /// the data-dependent energy terms (`Ec`, `Ewd`) scale with density
    /// while schedules (cycles, conversions) stay geometry-bound. This is
    /// the repository's extension — the paper's evaluation is dense-input.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the geometry cannot be derived.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `(0.0, 1.0]`.
    pub fn evaluate_with_density(
        &self,
        design: Design,
        layer: &LayerShape,
        density: f64,
    ) -> Result<CostReport, ArchError> {
        assert!(
            density > 0.0 && density <= 1.0,
            "activation density must be in (0, 1]"
        );
        let mut g = DesignGeometry::derive(design, layer, self.cells_per_weight())?;
        g.nonzero_row_activations = (g.nonzero_row_activations as f64 * density).round() as u128;
        Ok(self.price(g))
    }

    /// Prices an already-derived geometry.
    pub fn price(&self, g: DesignGeometry) -> CostReport {
        let (tech, p) = (&self.tech, &self.params);
        let rows = g.array.rows;
        let phys_cols = g.phys_cols_per_instance();
        let instances = g.array.instances as f64;
        let cycles = g.cycles as f64;
        let is_pf = matches!(g.design, Design::PaddingFree);

        let wd = WordlineDriver::new(tech, p, phys_cols);
        let bd = BitlineDriver::new(tech, p, rows);
        let dec = RowDecoder::new(tech, p, rows);
        let mux = ColumnMux::new(tech, p, phys_cols);
        let rc = ReadCircuit::new(tech, p);
        let sa = ShiftAdder::new(tech, p, g.cells_per_weight, g.merge_width);
        let acc = is_pf.then(|| OutputAccumulator::new(tech, p, g.accumulator_channels));

        // ---- latency (Eq. 3): per-cycle component times x cycle count.
        // Instances operate in parallel, so per-cycle time takes one
        // instance's pipeline; the serialisation inside a cycle is the
        // mux_ratio conversions sharing each read channel.
        let mux_ratio = p.mux_ratio.max(1) as f64;
        let mut latency = [0.0f64; 9];
        latency[Component::WordlineDriving.index()] = wd.latency_ns() * cycles;
        latency[Component::BitlineDriving.index()] = bd.latency_ns() * cycles;
        latency[Component::Decoder.index()] = dec.latency_ns() * cycles;
        latency[Component::Mux.index()] = mux.latency_ns() * cycles;
        latency[Component::ReadCircuit.index()] = rc.latency_ns() * mux_ratio * cycles;
        latency[Component::ShiftAdder.index()] = sa.latency_ns() * cycles;
        if let Some(acc) = &acc {
            latency[Component::Accumulator.index()] = acc.latency_ns() * cycles;
        }

        // ---- energy (Eq. 4).
        // Input activations stream bit-serially; on average half the
        // magnitude bit-planes of a non-zero activation pulse.
        let phase_activity = f64::from(p.input_bits) / 2.0;
        let act = g.nonzero_row_activations as f64;
        let mut energy = [0.0f64; 9];
        energy[Component::Computation.index()] = act
            * g.array.weight_cols as f64
            * g.cells_per_weight as f64
            * self.cell.avg_read_energy_pj()
            * phase_activity;
        energy[Component::WordlineDriving.index()] =
            act * wd.energy_per_activation_pj() * phase_activity;
        energy[Component::BitlineDriving.index()] = cycles
            * instances
            * phys_cols as f64
            * bd.energy_per_precharge_pj()
            * f64::from(p.input_bits);
        energy[Component::Decoder.index()] = cycles * instances * dec.energy_per_cycle_pj();
        energy[Component::Mux.index()] = cycles * instances * mux.energy_per_cycle_pj();
        energy[Component::ReadCircuit.index()] =
            g.conversions as f64 * f64::from(p.input_bits) * rc.energy_per_conversion_pj();
        energy[Component::ShiftAdder.index()] = g.sa_events as f64 * sa.energy_per_cycle_pj();
        if let Some(acc) = &acc {
            energy[Component::Accumulator.index()] =
                g.accumulated_values as f64 * acc.energy_per_value_pj();
        }

        // ---- area.
        // Read channels: monolithic designs convert every physical column
        // through a mux; RED's mode groups share channels through the
        // vertical sum-up, so its bank is sized by the per-batch output
        // channels, not per sub-crossbar.
        let design_channels = match g.design {
            Design::Red { .. } => g.adc_channels_per_cycle,
            _ => phys_cols,
        };
        let adc_banks = design_channels.div_ceil(p.mux_ratio.max(1)) as f64;
        let cell_area = g.total_cells() as f64 * self.cell.area_um2(tech);
        let mut area = [0.0f64; 9];
        area[Component::Computation.index()] = cell_area;
        area[Component::WordlineDriving.index()] = g.array.total_rows() as f64 * wd.area_um2();
        area[Component::BitlineDriving.index()] = instances * phys_cols as f64 * bd.area_um2();
        area[Component::Decoder.index()] = instances * dec.area_um2();
        area[Component::Mux.index()] = instances * mux.area_um2();
        area[Component::ReadCircuit.index()] = adc_banks * rc.area_um2();
        area[Component::ShiftAdder.index()] = adc_banks * sa.area_um2();
        if let Some(acc) = &acc {
            area[Component::Accumulator.index()] = acc.area_um2();
        }
        // Control: input registers per row, output registers per read
        // channel, plus the segmentation overhead of splitting the array
        // across instances (zero for monolithic designs).
        let segmentation = cell_area * p.a_segmentation_frac * (1.0 - 1.0 / instances);
        area[Component::Control.index()] = g.array.total_rows() as f64 * p.a_reg_per_port_um2
            + design_channels as f64 * p.a_reg_per_port_um2
            + segmentation;

        CostReport {
            design: g.design,
            layer: g.layer,
            geometry: g,
            latency_ns: latency,
            energy_pj: energy,
            area_um2: area,
        }
    }
}

/// Modeled cost of re-programming a block of ReRAM cells — the repair
/// price of the self-healing serving layer (see
/// [`CostModel::reprogram_cost`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReprogramCost {
    /// Cells re-written.
    pub cells: u64,
    /// Total write-and-verify latency, in ns.
    pub latency_ns: f64,
    /// Total programming energy, in pJ.
    pub energy_pj: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedLayoutPolicy;

    fn table1() -> Vec<(&'static str, LayerShape)> {
        vec![
            (
                "GAN_Deconv1",
                LayerShape::with_spec(
                    8,
                    8,
                    512,
                    256,
                    red_tensor::DeconvSpec::with_output_padding(5, 5, 2, 2, 1).unwrap(),
                )
                .unwrap(),
            ),
            (
                "GAN_Deconv2",
                LayerShape::with_spec(
                    4,
                    4,
                    512,
                    256,
                    red_tensor::DeconvSpec::with_output_padding(5, 5, 2, 2, 1).unwrap(),
                )
                .unwrap(),
            ),
            (
                "GAN_Deconv3",
                LayerShape::new(4, 4, 512, 256, 4, 4, 2, 1).unwrap(),
            ),
            (
                "GAN_Deconv4",
                LayerShape::new(6, 6, 512, 256, 4, 4, 2, 1).unwrap(),
            ),
            (
                "FCN_Deconv1",
                LayerShape::new(16, 16, 21, 21, 4, 4, 2, 0).unwrap(),
            ),
            (
                "FCN_Deconv2",
                LayerShape::new(70, 70, 21, 21, 16, 16, 8, 0).unwrap(),
            ),
        ]
    }

    #[test]
    fn reprogram_cost_is_per_cell_linear() {
        let model = CostModel::paper_default();
        let one = model.reprogram_cost(1);
        assert_eq!(one.latency_ns, model.cell().write_time_ns());
        assert_eq!(one.energy_pj, model.cell().write_energy_pj());
        let block = model.reprogram_cost(4096);
        assert_eq!(block.cells, 4096);
        assert!((block.latency_ns / one.latency_ns - 4096.0).abs() < 1e-9);
        assert!((block.energy_pj / one.energy_pj - 4096.0).abs() < 1e-9);
        assert_eq!(model.reprogram_cost(0).latency_ns, 0.0);
    }

    #[test]
    fn component_taxonomy() {
        assert_eq!(Component::ALL.len(), 9);
        assert!(Component::WordlineDriving.is_array());
        assert!(!Component::Decoder.is_array());
        assert_eq!(Component::ReadCircuit.abbr(), "rc");
    }

    #[test]
    fn breakdown_sums_to_totals() {
        let model = CostModel::paper_default();
        let layer = LayerShape::new(4, 4, 64, 32, 4, 4, 2, 1).unwrap();
        for design in Design::paper_lineup() {
            let r = model.evaluate(design, &layer).unwrap();
            let sum = r.array_latency_ns() + r.periphery_latency_ns();
            assert!((sum - r.total_latency_ns()).abs() < 1e-9);
            let sum = r.array_energy_pj() + r.periphery_energy_pj();
            assert!((sum - r.total_energy_pj()).abs() / sum.max(1.0) < 1e-12);
            let sum = r.array_area_um2() + r.periphery_area_um2();
            assert!((sum - r.total_area_um2()).abs() / sum < 1e-12);
        }
    }

    #[test]
    fn identical_array_area_across_designs() {
        // §IV-B3: "three designs incur the same array area because of their
        // identical kernel size" — cell area must match exactly.
        let model = CostModel::paper_default();
        for (_, layer) in table1() {
            let cells: Vec<f64> = Design::paper_lineup()
                .iter()
                .map(|&d| {
                    model
                        .evaluate(d, &layer)
                        .unwrap()
                        .area_um2(Component::Computation)
                })
                .collect();
            assert!((cells[0] - cells[1]).abs() < 1e-6);
            assert!((cells[0] - cells[2]).abs() < 1e-6);
        }
    }

    #[test]
    fn accumulator_only_for_padding_free() {
        let model = CostModel::paper_default();
        let layer = LayerShape::new(4, 4, 16, 8, 3, 3, 2, 0).unwrap();
        let pf = model.evaluate(Design::PaddingFree, &layer).unwrap();
        assert!(pf.area_um2(Component::Accumulator) > 0.0);
        assert!(pf.energy_pj(Component::Accumulator) > 0.0);
        for d in [Design::ZeroPadding, Design::red(RedLayoutPolicy::Auto)] {
            let r = model.evaluate(d, &layer).unwrap();
            assert_eq!(r.area_um2(Component::Accumulator), 0.0);
            assert_eq!(r.latency_ns(Component::Accumulator), 0.0);
        }
    }

    /// Prints the full calibration snapshot (run with `--nocapture`); the
    /// hard assertions live in the repository-level `paper_bands` test.
    #[test]
    fn calibration_snapshot() {
        let model = CostModel::paper_default();
        for (name, layer) in table1() {
            let zp = model.evaluate(Design::ZeroPadding, &layer).unwrap();
            let pf = model.evaluate(Design::PaddingFree, &layer).unwrap();
            let red = model
                .evaluate(Design::red(RedLayoutPolicy::Auto), &layer)
                .unwrap();
            println!(
                "{name:12} speedup(RED)={:6.2} zp/pf={:5.2} e-save(RED)={:6.1}% pf-array/zp-array={:5.2} \
                 pf-area={:+6.1}% red-area={:+6.1}% pf-energy/zp={:5.2}",
                red.speedup_vs(&zp),
                zp.total_latency_ns() / pf.total_latency_ns(),
                red.energy_saving_vs(&zp) * 100.0,
                pf.array_energy_pj() / zp.array_energy_pj(),
                pf.area_overhead_vs(&zp) * 100.0,
                red.area_overhead_vs(&zp) * 100.0,
                pf.total_energy_pj() / zp.total_energy_pj(),
            );
        }
    }

    #[test]
    fn sparsity_scales_data_dependent_energy() {
        let model = CostModel::paper_default();
        let layer = LayerShape::new(4, 4, 256, 128, 4, 4, 2, 1).unwrap();
        let dense = model.evaluate(Design::ZeroPadding, &layer).unwrap();
        let half = model
            .evaluate_with_density(Design::ZeroPadding, &layer, 0.5)
            .unwrap();
        // Compute and wordline energies halve...
        let ec_ratio =
            half.energy_pj(Component::Computation) / dense.energy_pj(Component::Computation);
        let wd_ratio = half.energy_pj(Component::WordlineDriving)
            / dense.energy_pj(Component::WordlineDriving);
        assert!((ec_ratio - 0.5).abs() < 1e-6);
        assert!((wd_ratio - 0.5).abs() < 1e-6);
        // ...while the schedule-bound terms are untouched.
        assert_eq!(
            half.energy_pj(Component::Decoder),
            dense.energy_pj(Component::Decoder)
        );
        assert_eq!(half.total_latency_ns(), dense.total_latency_ns());
        assert_eq!(half.geometry.cycles, dense.geometry.cycles);
    }

    #[test]
    #[should_panic(expected = "activation density")]
    fn zero_density_panics() {
        let model = CostModel::paper_default();
        let layer = LayerShape::new(4, 4, 8, 8, 3, 3, 2, 0).unwrap();
        let _ = model.evaluate_with_density(Design::ZeroPadding, &layer, 0.0);
    }

    #[test]
    fn red_beats_zero_padding_everywhere() {
        let model = CostModel::paper_default();
        for (name, layer) in table1() {
            let zp = model.evaluate(Design::ZeroPadding, &layer).unwrap();
            let red = model
                .evaluate(Design::red(RedLayoutPolicy::Auto), &layer)
                .unwrap();
            assert!(
                red.speedup_vs(&zp) > 1.0,
                "{name}: RED must be faster than zero-padding"
            );
            assert!(
                red.energy_saving_vs(&zp) > 0.0,
                "{name}: RED must save energy vs zero-padding"
            );
        }
    }
}
