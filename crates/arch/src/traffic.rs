//! Feature-map buffer traffic analysis.
//!
//! The paper's Fig. 1(c) architecture moves feature maps through a global
//! row buffer and per-bank buffer subarrays, but §IV prices only the
//! crossbar datapath. This module counts the buffer words each design
//! moves per layer — a second-order comparison that reinforces the
//! paper's conclusions:
//!
//! * the zero-padding design re-reads each input pixel once per covering
//!   window (`~KH·KW` times) because its receptive fields overlap;
//! * the padding-free design reads each input exactly once but must spill
//!   `KH·KW·M` partial values per cycle into the overlap-add buffer and
//!   read most of them back;
//! * RED reads inputs once per sub-crossbar group that needs them
//!   (`~KH·KW` activations, same as zero-padding's *useful* reads) and
//!   writes each output pixel exactly once — no partial spill traffic at
//!   all, since the vertical sum-up merges in the datapath.

use crate::{ArchError, CostModel, Design, DesignGeometry};
use red_tensor::LayerShape;
use serde::Serialize;

/// Buffer words moved by one design executing one layer.
///
/// A "word" is one activation value (one channel of one pixel) at the
/// configured activation precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrafficReport {
    /// Words read from the input feature-map buffer into wordline drivers.
    pub input_reads: u128,
    /// Final output words written to the output feature-map buffer.
    pub output_writes: u128,
    /// Intermediate partial-sum words spilled to and re-read from the
    /// overlap-add buffer (padding-free only; zero elsewhere).
    pub partial_traffic: u128,
}

impl TrafficReport {
    /// Total words moved.
    pub fn total_words(&self) -> u128 {
        self.input_reads + self.output_writes + self.partial_traffic
    }

    /// Total bytes at `bits` per word (rounded up to whole bytes/word).
    pub fn total_bytes(&self, bits: u32) -> u128 {
        self.total_words() * u128::from(bits.div_ceil(8))
    }
}

impl CostModel {
    /// Counts buffer traffic for `design` executing `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the geometry cannot be derived.
    pub fn traffic(&self, design: Design, layer: &LayerShape) -> Result<TrafficReport, ArchError> {
        let g = DesignGeometry::derive(design, layer, self.cells_per_weight())?;
        let out_words = layer.output_geometry().pixels() as u128 * layer.filters() as u128;
        Ok(match design {
            Design::ZeroPadding => TrafficReport {
                // Every non-zero wordline slot is one buffered word fetched
                // (zero slots are generated, not fetched).
                input_reads: g.nonzero_row_activations,
                output_writes: out_words,
                partial_traffic: 0,
            },
            Design::PaddingFree => {
                // Inputs stream exactly once...
                let input_reads = g.nonzero_row_activations;
                // ...but every per-cycle partial (KH*KW*M values) is written
                // to the overlap-add buffer, and overlapping positions are
                // read back once per additional contribution.
                let writes = g.accumulated_values;
                let read_backs = writes.saturating_sub(out_words);
                TrafficReport {
                    input_reads,
                    output_writes: out_words,
                    partial_traffic: writes + read_backs,
                }
            }
            Design::Red { .. } => TrafficReport {
                // Same useful reads as zero-padding (each (pixel, tap) pair
                // once); the in-datapath vertical sum-up means no partial
                // spill.
                input_reads: g.nonzero_row_activations,
                output_writes: out_words,
                partial_traffic: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedLayoutPolicy;

    fn layer() -> LayerShape {
        LayerShape::new(4, 4, 64, 32, 4, 4, 2, 1).unwrap()
    }

    #[test]
    fn padding_free_pays_partial_spill() {
        let model = CostModel::paper_default();
        let pf = model.traffic(Design::PaddingFree, &layer()).unwrap();
        let zp = model.traffic(Design::ZeroPadding, &layer()).unwrap();
        let red = model
            .traffic(Design::red(RedLayoutPolicy::Auto), &layer())
            .unwrap();
        assert!(pf.partial_traffic > 0);
        assert_eq!(zp.partial_traffic, 0);
        assert_eq!(red.partial_traffic, 0);
        // PF reads each input word once; ZP/RED read each ~KH*KW times.
        assert!(zp.input_reads > 10 * pf.input_reads);
        // But PF's spill traffic dominates its total.
        assert!(pf.total_words() > pf.input_reads + pf.output_writes);
    }

    #[test]
    fn red_and_zero_padding_traffic_match() {
        // Zero-skipping changes *when* words are read, not how many.
        let model = CostModel::paper_default();
        let zp = model.traffic(Design::ZeroPadding, &layer()).unwrap();
        let red = model
            .traffic(Design::red(RedLayoutPolicy::Auto), &layer())
            .unwrap();
        assert_eq!(zp, red);
    }

    #[test]
    fn output_writes_are_output_words() {
        let model = CostModel::paper_default();
        let l = layer();
        let out_words = (l.output_geometry().pixels() * l.filters()) as u128;
        for design in Design::paper_lineup() {
            let t = model.traffic(design, &l).unwrap();
            assert_eq!(t.output_writes, out_words, "{design}");
        }
    }

    #[test]
    fn byte_accounting() {
        let t = TrafficReport {
            input_reads: 100,
            output_writes: 50,
            partial_traffic: 10,
        };
        assert_eq!(t.total_words(), 160);
        assert_eq!(t.total_bytes(8), 160);
        assert_eq!(t.total_bytes(16), 320);
        assert_eq!(t.total_bytes(12), 320); // rounds to 2 bytes/word
    }

    #[test]
    fn partial_readbacks_counted_once_per_extra_contribution() {
        // 1x1 input: no overlap at all -> partial traffic equals the single
        // write set with no read-backs beyond it.
        let model = CostModel::paper_default();
        let single = LayerShape::new(1, 1, 8, 4, 3, 3, 2, 0).unwrap();
        let t = model.traffic(Design::PaddingFree, &single).unwrap();
        // 1 cycle * 9 taps * 4 filters written; output is 3x3x4 = 36 words,
        // so zero read-backs.
        assert_eq!(t.partial_traffic, 36);
        assert_eq!(t.output_writes, 36);
    }
}
