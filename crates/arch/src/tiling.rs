//! Physical-macro tiling mode for the cost model.
//!
//! The paper's model (and our default) prices each design's arrays at
//! their *logical* size — a `12800 × 1024` zero-padding array is billed as
//! one array. Real ReRAM macros cap out at a few hundred wordlines and
//! bitlines, so a fabricated accelerator splits logical arrays into a grid
//! of bounded tiles whose partial results are summed digitally (as
//! PipeLayer-class designs do). This module prices that realistic mode:
//! shorter lines (cheaper driving) against more instances (more periphery)
//! and a deeper cross-tile merge.
//!
//! Used by `ablation` to show that the paper's headline *orderings* are
//! robust to the tiling assumption even though the absolute numbers move.

use crate::{ArchError, CostModel, CostReport, Design};
use red_tensor::LayerShape;
use serde::{Deserialize, Serialize};

/// A bounded physical crossbar macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacroSpec {
    /// Maximum wordlines per macro.
    pub max_rows: usize,
    /// Maximum physical (bit-sliced) columns per macro.
    pub max_phys_cols: usize,
}

impl MacroSpec {
    /// A common published macro size: 512 × 512 physical cells.
    pub fn m512() -> Self {
        Self {
            max_rows: 512,
            max_phys_cols: 512,
        }
    }

    /// A conservative 128 × 128 macro.
    pub fn m128() -> Self {
        Self {
            max_rows: 128,
            max_phys_cols: 128,
        }
    }

    /// Creates a macro bound.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    pub fn new(max_rows: usize, max_phys_cols: usize) -> Self {
        assert!(
            max_rows > 0 && max_phys_cols > 0,
            "macro dimensions must be positive"
        );
        Self {
            max_rows,
            max_phys_cols,
        }
    }
}

impl CostModel {
    /// Prices `design` on `layer` with every logical array instance split
    /// into physical macros of at most `mac` size.
    ///
    /// Row tiles contribute partial sums that are merged digitally
    /// (deepening the shift-adder merge by the row-tile count); column
    /// tiles segment each wordline (more, shorter drives and more
    /// conversions-per-cycle capacity).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the base geometry cannot be derived.
    pub fn evaluate_tiled(
        &self,
        design: Design,
        layer: &LayerShape,
        mac: MacroSpec,
    ) -> Result<CostReport, ArchError> {
        let base = crate::DesignGeometry::derive(design, layer, self.cells_per_weight())?;
        let rows = base.array.rows;
        let phys_cols = base.phys_cols_per_instance();
        let row_tiles = rows.div_ceil(mac.max_rows);
        let col_tiles = phys_cols.div_ceil(mac.max_phys_cols);

        let mut g = base;
        g.array.rows = rows.div_ceil(row_tiles);
        g.array.weight_cols = base.array.weight_cols.div_ceil(col_tiles);
        g.array.instances = base.array.instances * row_tiles * col_tiles;
        // Each logical row is now segmented across `col_tiles` wordlines.
        g.nonzero_row_activations = base.nonzero_row_activations * col_tiles as u128;
        g.total_row_slots = base.total_row_slots * col_tiles as u128;
        // Each physical column converts once per row tile (partial sums).
        g.conversions = base.conversions * row_tiles as u128;
        g.adc_channels_per_cycle = base.adc_channels_per_cycle * row_tiles;
        // Cross-tile partial sums deepen the merge tree.
        g.merge_width = base.merge_width * row_tiles;
        Ok(self.price(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedLayoutPolicy;

    fn gan_d3() -> LayerShape {
        LayerShape::new(4, 4, 512, 256, 4, 4, 2, 1).unwrap()
    }

    #[test]
    fn untileable_layer_matches_untiled_price() {
        // A layer that already fits one macro must price identically.
        let model = CostModel::paper_default();
        let tiny = LayerShape::new(4, 4, 8, 4, 3, 3, 2, 0).unwrap();
        let mac = MacroSpec::new(4096, 4096);
        for design in Design::paper_lineup() {
            let plain = model.evaluate(design, &tiny).unwrap();
            let tiled = model.evaluate_tiled(design, &tiny, mac).unwrap();
            assert!(
                (plain.total_latency_ns() - tiled.total_latency_ns()).abs() < 1e-9,
                "{design}"
            );
            assert!(
                (plain.total_area_um2() - tiled.total_area_um2()).abs() < 1e-6,
                "{design}"
            );
        }
    }

    #[test]
    fn tiling_multiplies_instances_and_merge() {
        let model = CostModel::paper_default();
        // Zero-padding GAN_Deconv3: 8192 rows x 1024 phys cols.
        let r = model
            .evaluate_tiled(Design::ZeroPadding, &gan_d3(), MacroSpec::m512())
            .unwrap();
        assert_eq!(r.geometry.array.instances, 16 * 2); // 16 row x 2 col tiles
        assert_eq!(r.geometry.array.rows, 512);
        assert_eq!(r.geometry.merge_width, 16);
    }

    #[test]
    fn paper_orderings_survive_tiling() {
        let model = CostModel::paper_default();
        for mac in [MacroSpec::m512(), MacroSpec::m128()] {
            let zp = model
                .evaluate_tiled(Design::ZeroPadding, &gan_d3(), mac)
                .unwrap();
            let pf = model
                .evaluate_tiled(Design::PaddingFree, &gan_d3(), mac)
                .unwrap();
            let red = model
                .evaluate_tiled(Design::red(RedLayoutPolicy::Auto), &gan_d3(), mac)
                .unwrap();
            // RED stays fastest and cheapest in energy; cell area identical.
            assert!(red.total_latency_ns() < zp.total_latency_ns());
            assert!(red.total_latency_ns() < pf.total_latency_ns());
            assert!(red.total_energy_pj() < zp.total_energy_pj());
            let zp_cells = zp.area_um2(crate::Component::Computation);
            let red_cells = red.area_um2(crate::Component::Computation);
            assert!((zp_cells - red_cells).abs() / zp_cells < 1e-9);
        }
    }

    #[test]
    fn smaller_macros_cost_more_area() {
        let model = CostModel::paper_default();
        let big = model
            .evaluate_tiled(Design::ZeroPadding, &gan_d3(), MacroSpec::m512())
            .unwrap();
        let small = model
            .evaluate_tiled(Design::ZeroPadding, &gan_d3(), MacroSpec::m128())
            .unwrap();
        assert!(small.total_area_um2() > big.total_area_um2());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_macro_panics() {
        let _ = MacroSpec::new(0, 128);
    }
}
