use serde::{Deserialize, Serialize};

/// Quantities measured by a functional engine while executing one layer.
///
/// Integration tests assert these match the closed-form
/// [`crate::DesignGeometry`] of the same design/layer — the functional
/// dataflow and the analytical cost model must describe the same machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Vector-operation cycles issued.
    pub cycles: u64,
    /// Crossbar vector-matrix operations issued (one per array instance
    /// activation; several instances may fire in the same cycle).
    pub vector_ops: u64,
    /// Wordline activations that carried a non-zero value.
    pub nonzero_row_activations: u128,
    /// Total wordline slots driven (zero or not).
    pub total_row_slots: u128,
    /// Output pixels produced.
    pub output_pixels: u64,
    /// Multiply-accumulates actually performed on non-zero operands.
    pub nonzero_macs: u128,
}

impl ExecutionStats {
    /// Fraction of driven wordline slots that carried zeros — the measured
    /// counterpart of the paper's Fig. 4 redundancy ratio.
    pub fn zero_slot_fraction(&self) -> f64 {
        if self.total_row_slots == 0 {
            return 0.0;
        }
        1.0 - self.nonzero_row_activations as f64 / self.total_row_slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fraction_handles_empty() {
        assert_eq!(ExecutionStats::default().zero_slot_fraction(), 0.0);
    }

    #[test]
    fn zero_fraction_math() {
        let s = ExecutionStats {
            nonzero_row_activations: 25,
            total_row_slots: 100,
            ..Default::default()
        };
        assert!((s.zero_slot_fraction() - 0.75).abs() < 1e-12);
    }
}
