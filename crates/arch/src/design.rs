use red_tensor::LayerShape;
use red_xbar::SctLayout;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the RED design chooses between the full sub-crossbar tensor (Eq. 1)
/// and the area-efficient halved arrangement (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RedLayoutPolicy {
    /// Always use `KH·KW` sub-crossbars (maximum parallelism).
    AlwaysFull,
    /// Always use `ceil(KH·KW/2)` doubled-row sub-crossbars and two cycles
    /// per batch.
    AlwaysHalved,
    /// The paper's choice: halve only when the kernel is large. The paper
    /// keeps 5×5/4×4 GAN kernels full and halves the 16×16 FCN kernel
    /// ("we employ 128 sub-arrays to complete the 64 computation modes in
    /// two cycles", §III-C); the threshold that reproduces that choice is
    /// 64 taps.
    #[default]
    Auto,
}

impl RedLayoutPolicy {
    /// Tap-count threshold above which [`RedLayoutPolicy::Auto`] halves.
    pub const AUTO_TAP_THRESHOLD: usize = 64;

    /// Resolves the policy to a concrete layout for a layer.
    pub fn resolve(&self, layer: &LayerShape) -> SctLayout {
        match self {
            RedLayoutPolicy::AlwaysFull => SctLayout::Full,
            RedLayoutPolicy::AlwaysHalved => SctLayout::Halved,
            RedLayoutPolicy::Auto => {
                if layer.taps() > Self::AUTO_TAP_THRESHOLD {
                    SctLayout::Halved
                } else {
                    SctLayout::Full
                }
            }
        }
    }
}

/// One of the three accelerator designs the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// Conventional zero-padding design (ReGAN-style): standard kernel
    /// mapping, the padded input streamed window by window.
    ZeroPadding,
    /// Padding-free design (FCN-Engine-style): input-stationary mapping
    /// with `KH·KW·M` output columns plus an overlap-add/crop unit.
    PaddingFree,
    /// The paper's contribution: pixel-wise mapping + zero-skipping data
    /// flow, with the given sub-crossbar layout policy.
    Red {
        /// Full vs halved sub-crossbar tensor selection.
        policy: RedLayoutPolicy,
    },
}

impl Design {
    /// Convenience constructor for [`Design::Red`].
    pub fn red(policy: RedLayoutPolicy) -> Self {
        Design::Red { policy }
    }

    /// All three designs with the paper's default RED policy, in the order
    /// the paper's figures present them.
    pub fn paper_lineup() -> [Design; 3] {
        [
            Design::ZeroPadding,
            Design::PaddingFree,
            Design::red(RedLayoutPolicy::Auto),
        ]
    }

    /// Short label used in reports and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Design::ZeroPadding => "zero-padding",
            Design::PaddingFree => "padding-free",
            Design::Red { .. } => "RED",
        }
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(k: usize, s: usize) -> LayerShape {
        LayerShape::new(8, 8, 16, 8, k, k, s, 0).unwrap()
    }

    #[test]
    fn auto_policy_matches_paper_choices() {
        // GAN kernels stay full.
        assert_eq!(RedLayoutPolicy::Auto.resolve(&layer(5, 2)), SctLayout::Full);
        assert_eq!(RedLayoutPolicy::Auto.resolve(&layer(4, 2)), SctLayout::Full);
        // The 16x16 FCN kernel is halved (256 taps > 64).
        assert_eq!(
            RedLayoutPolicy::Auto.resolve(&layer(16, 8)),
            SctLayout::Halved
        );
    }

    #[test]
    fn forced_policies() {
        assert_eq!(
            RedLayoutPolicy::AlwaysHalved.resolve(&layer(3, 2)),
            SctLayout::Halved
        );
        assert_eq!(
            RedLayoutPolicy::AlwaysFull.resolve(&layer(16, 8)),
            SctLayout::Full
        );
    }

    #[test]
    fn labels_and_lineup() {
        let lineup = Design::paper_lineup();
        assert_eq!(lineup[0].label(), "zero-padding");
        assert_eq!(lineup[1].to_string(), "padding-free");
        assert_eq!(lineup[2].label(), "RED");
    }
}
