//! # red-arch
//!
//! Accelerator architecture models for the RED reproduction: the three
//! designs the paper evaluates (§III–§IV), each as both a *functional
//! engine* that executes deconvolutions through simulated crossbars and an
//! *analytical geometry* that the latency/energy/area cost model prices.
//!
//! | Design | Paper | Mapping | Cycles |
//! |---|---|---|---|
//! | [`Design::ZeroPadding`] | ReGAN-style baseline | one `(KH·KW·C) × M` array | `OH·OW` |
//! | [`Design::PaddingFree`] | FCN-Engine-style | one `C × (KH·KW·M)` array + overlap-add/crop unit | `IH·IW` |
//! | [`Design::Red`] | this paper | `KH·KW` sub-crossbars of `C × M` (Eq. 1), zero-skipping flow | `OH·OW / s²` |
//!
//! The RED design additionally supports the paper's Eq. 2 area-efficient
//! variant (half the sub-crossbars, double rows, two cycles per batch),
//! selected per-layer by [`RedLayoutPolicy`].
//!
//! Functional engines ([`engines`]) produce bit-exact deconvolution outputs
//! (verified against the `red-tensor` golden algorithms) together with
//! measured [`ExecutionStats`]; the cost model ([`cost`]) prices the same
//! geometry analytically with the paper's Table II component breakdown and
//! Eq. 3 / Eq. 4 aggregation. Tests cross-check the two: measured cycle and
//! activation counts must equal the analytical ones.
//!
//! # Example
//!
//! ```
//! use red_arch::{CostModel, Design, RedLayoutPolicy};
//! use red_tensor::LayerShape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // GAN_Deconv3 from Table I.
//! let layer = LayerShape::new(4, 4, 512, 256, 4, 4, 2, 1)?;
//! let model = CostModel::paper_default();
//! let zp = model.evaluate(Design::ZeroPadding, &layer)?;
//! let red = model.evaluate(Design::red(RedLayoutPolicy::Auto), &layer)?;
//! let speedup = zp.total_latency_ns() / red.total_latency_ns();
//! assert!(speedup > 3.0 && speedup < 4.0); // paper: 3.69x at stride 2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
mod design;
pub mod engines;
mod error;
mod geometry;
mod pipeline;
mod plan;
mod programming;
mod stats;
mod tiling;
mod traffic;

pub use cost::{Component, CostModel, CostReport, ReprogramCost};
pub use design::{Design, RedLayoutPolicy};
pub use engines::{
    ConvEngine, ConvScratch, DeconvEngine, Execution, PaddingFreeEngine, PfScratch, RedEngine,
    RedScratch, ZeroPaddingEngine, ZpScratch,
};
pub use error::ArchError;
pub use geometry::{ArrayShape, DesignGeometry};
pub use pipeline::PipelineReport;
pub use plan::{ExecPlan, GatherEntry, PixelStep};
pub use programming::ProgrammingCost;
pub use red_xbar::ExecPrecision;
pub use stats::ExecutionStats;
pub use tiling::MacroSpec;
pub use traffic::TrafficReport;
