//! One-time programming (weight-loading) cost.
//!
//! The paper evaluates inference with weights already resident — the
//! PIM assumption. This module prices the write phase that precedes it:
//! how long and how much energy it takes to program a layer's kernel into
//! the crossbars of each design. Because all three designs store exactly
//! the same `KH·KW·C·M·cells_per_weight` cells, their programming *energy*
//! is identical; programming *time* differs only through write-port
//! parallelism (one row per array instance can program at a time, so RED's
//! many sub-crossbars load faster in parallel).

use crate::{ArchError, CostModel, Design, DesignGeometry};
use red_tensor::LayerShape;
use serde::Serialize;

/// Cost of loading one layer's weights.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ProgrammingCost {
    /// Cells written (`weights × cells_per_weight`).
    pub cells: u128,
    /// Total write energy, in pJ.
    pub energy_pj: f64,
    /// Wall-clock programming time with one active write row per array
    /// instance, in ns.
    pub time_ns: f64,
}

impl CostModel {
    /// Prices programming `layer`'s weights into `design`'s arrays.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the geometry cannot be derived.
    pub fn programming_cost(
        &self,
        design: Design,
        layer: &LayerShape,
    ) -> Result<ProgrammingCost, ArchError> {
        let g = DesignGeometry::derive(design, layer, self.cells_per_weight())?;
        let cells = g.total_cells();
        let energy_pj = cells as f64 * self.cell().write_energy_pj();
        // Row-serial, instance-parallel writes: each instance programs its
        // rows one at a time, all instances concurrently.
        let rows_serial = g.array.rows as f64;
        let time_ns = rows_serial * self.cell().write_time_ns();
        Ok(ProgrammingCost {
            cells,
            energy_pj,
            time_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedLayoutPolicy;

    fn layer() -> LayerShape {
        LayerShape::new(4, 4, 512, 256, 4, 4, 2, 1).unwrap()
    }

    #[test]
    fn identical_write_energy_across_designs() {
        let model = CostModel::paper_default();
        let costs: Vec<ProgrammingCost> = Design::paper_lineup()
            .iter()
            .map(|&d| model.programming_cost(d, &layer()).unwrap())
            .collect();
        assert_eq!(costs[0].cells, costs[1].cells);
        assert_eq!(costs[0].cells, costs[2].cells);
        assert!((costs[0].energy_pj - costs[2].energy_pj).abs() < 1e-6);
    }

    #[test]
    fn red_programs_faster_through_instance_parallelism() {
        let model = CostModel::paper_default();
        let zp = model
            .programming_cost(Design::ZeroPadding, &layer())
            .unwrap();
        let red = model
            .programming_cost(Design::red(RedLayoutPolicy::Auto), &layer())
            .unwrap();
        // ZP: 16*512 serial rows; RED: 512 rows per SC in parallel.
        assert!((zp.time_ns / red.time_ns - 16.0).abs() < 1e-9);
    }

    #[test]
    fn programming_dwarfs_one_inference_in_energy() {
        // Sanity: a single write pass costs far more than one inference —
        // the reason PIM designs keep weights resident.
        let model = CostModel::paper_default();
        let prog = model
            .programming_cost(Design::ZeroPadding, &layer())
            .unwrap();
        let infer = model.evaluate(Design::ZeroPadding, &layer()).unwrap();
        assert!(prog.energy_pj > infer.total_energy_pj());
    }
}
