use crate::{ArchError, Design};
use red_tensor::{redundancy, LayerShape};
use red_xbar::SctLayout;
use serde::{Deserialize, Serialize};

/// Logical shape of the crossbar array instances a design deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayShape {
    /// Wordlines per instance.
    pub rows: usize,
    /// Logical weight columns per instance (before bit-slicing).
    pub weight_cols: usize,
    /// Number of identical instances (1 for the monolithic designs,
    /// the sub-crossbar count for RED).
    pub instances: usize,
}

impl ArrayShape {
    /// Total wordlines across all instances.
    pub fn total_rows(&self) -> usize {
        self.rows * self.instances
    }

    /// Total logical weight columns across all instances.
    pub fn total_weight_cols(&self) -> usize {
        self.weight_cols * self.instances
    }
}

/// The analytical geometry of one design executing one layer: everything
/// the cost model needs, derived in closed form from the layer shape.
///
/// The functional engines measure the same quantities while executing
/// (see [`crate::ExecutionStats`]); integration tests assert the two agree
/// exactly, which pins the cost model to the real dataflows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignGeometry {
    /// The design this geometry describes.
    pub design: Design,
    /// The layer it executes.
    pub layer: LayerShape,
    /// Array instance shape.
    pub array: ArrayShape,
    /// Physical cells per logical weight (bit-slices).
    pub cells_per_weight: usize,
    /// Vector-operation cycles to complete the layer.
    pub cycles: u64,
    /// Physical columns converted per cycle (pre-mux), across instances.
    pub adc_channels_per_cycle: usize,
    /// Partial sums merged per output channel (1 = no cross-array merge).
    pub merge_width: usize,
    /// Final output-channel shift-add events over the whole layer.
    pub sa_events: u128,
    /// Non-zero wordline activations over the whole layer (channel
    /// resolved; excludes input-bit phases).
    pub nonzero_row_activations: u128,
    /// Total wordline slots over the layer (`cycles × rows × instances`),
    /// zero or not.
    pub total_row_slots: u128,
    /// Physical-column conversions over the layer (excludes input-bit
    /// phases).
    pub conversions: u128,
    /// Overlap-add unit channels (padding-free only, 0 otherwise).
    pub accumulator_channels: usize,
    /// Values accumulated by the overlap-add unit over the layer
    /// (padding-free only).
    pub accumulated_values: u128,
}

impl DesignGeometry {
    /// Derives the geometry of `design` running `layer` with
    /// `cells_per_weight` bit-slices per weight.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::KernelMismatch`] if `cells_per_weight` is zero.
    pub fn derive(
        design: Design,
        layer: &LayerShape,
        cells_per_weight: usize,
    ) -> Result<Self, ArchError> {
        if cells_per_weight == 0 {
            return Err(ArchError::KernelMismatch {
                detail: "cells_per_weight must be positive".into(),
            });
        }
        let cpw = cells_per_weight;
        let geom = layer.output_geometry();
        let (c, m) = (layer.channels(), layer.filters());
        let taps = layer.taps();
        let s = layer.spec().stride();
        let nnz_pairs =
            redundancy::nonzero_window_tap_pairs(layer.input_h(), layer.input_w(), layer.spec());

        let out = match design {
            Design::ZeroPadding => {
                let array = ArrayShape {
                    rows: taps * c,
                    weight_cols: m,
                    instances: 1,
                };
                let cycles = geom.pixels() as u64;
                let phys_cols = m * cpw;
                Self {
                    design,
                    layer: *layer,
                    array,
                    cells_per_weight: cpw,
                    cycles,
                    adc_channels_per_cycle: phys_cols,
                    merge_width: 1,
                    sa_events: cycles as u128 * m as u128,
                    nonzero_row_activations: nnz_pairs * c as u128,
                    total_row_slots: cycles as u128 * array.total_rows() as u128,
                    conversions: cycles as u128 * phys_cols as u128,
                    accumulator_channels: 0,
                    accumulated_values: 0,
                }
            }
            Design::PaddingFree => {
                let array = ArrayShape {
                    rows: c,
                    weight_cols: taps * m,
                    instances: 1,
                };
                let cycles = (layer.input_h() * layer.input_w()) as u64;
                let phys_cols = taps * m * cpw;
                Self {
                    design,
                    layer: *layer,
                    array,
                    cells_per_weight: cpw,
                    cycles,
                    adc_channels_per_cycle: phys_cols,
                    merge_width: 1,
                    sa_events: cycles as u128 * (taps * m) as u128,
                    nonzero_row_activations: cycles as u128 * c as u128,
                    total_row_slots: cycles as u128 * c as u128,
                    conversions: cycles as u128 * phys_cols as u128,
                    accumulator_channels: phys_cols,
                    accumulated_values: cycles as u128 * (taps * m) as u128,
                }
            }
            Design::Red { policy } => {
                let layout = policy.resolve(layer);
                let (instances, rows, cycles_per_batch) = match layout {
                    SctLayout::Full => (taps, c, 1u64),
                    SctLayout::Halved => (taps.div_ceil(2), 2 * c, 2u64),
                };
                let array = ArrayShape {
                    rows,
                    weight_cols: m,
                    instances,
                };
                let batches = (geom.height.div_ceil(s) * geom.width.div_ceil(s)) as u64;
                let cycles = batches * cycles_per_batch;
                // ceil(KH/s) * ceil(KW/s): the widest mode group merged
                // into one output pixel.
                let merge_width =
                    layer.spec().kernel_h().div_ceil(s) * layer.spec().kernel_w().div_ceil(s);
                // Sub-crossbars of one mode group share a read channel
                // through the vertical sum-up path ([8,12] in the paper),
                // so the conversion count per batch is one per *output
                // pixel channel*, not per tap: the non-empty modes
                // (min(s,K) per axis) times M filters. This is what keeps
                // RED's total conversions equal to the zero-padding
                // design's.
                let live_modes = s.min(layer.spec().kernel_h()) * s.min(layer.spec().kernel_w());
                let out_channels = live_modes * m * cpw;
                Self {
                    design,
                    layer: *layer,
                    array,
                    cells_per_weight: cpw,
                    cycles,
                    adc_channels_per_cycle: out_channels,
                    merge_width,
                    sa_events: batches as u128 * (live_modes * m) as u128,
                    nonzero_row_activations: nnz_pairs * c as u128,
                    total_row_slots: cycles as u128 * array.total_rows() as u128,
                    conversions: batches as u128 * out_channels as u128,
                    accumulator_channels: 0,
                    accumulated_values: 0,
                }
            }
        };
        Ok(out)
    }

    /// Physical columns per instance (`weight_cols × cells_per_weight`).
    pub fn phys_cols_per_instance(&self) -> usize {
        self.array.weight_cols * self.cells_per_weight
    }

    /// Total ReRAM cells across all instances.
    pub fn total_cells(&self) -> u128 {
        self.array.total_rows() as u128 * self.phys_cols_per_instance() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedLayoutPolicy;

    fn gan_d3() -> LayerShape {
        LayerShape::new(4, 4, 512, 256, 4, 4, 2, 1).unwrap()
    }

    fn fcn_d2() -> LayerShape {
        LayerShape::new(70, 70, 21, 21, 16, 16, 8, 0).unwrap()
    }

    #[test]
    fn zero_padding_geometry() {
        let g = DesignGeometry::derive(Design::ZeroPadding, &gan_d3(), 4).unwrap();
        assert_eq!(g.array.rows, 16 * 512);
        assert_eq!(g.array.weight_cols, 256);
        assert_eq!(g.array.instances, 1);
        assert_eq!(g.cycles, 64); // OH*OW = 8*8
        assert_eq!(g.phys_cols_per_instance(), 1024);
        assert_eq!(g.conversions, 64 * 1024);
        assert_eq!(g.merge_width, 1);
    }

    #[test]
    fn padding_free_geometry() {
        let g = DesignGeometry::derive(Design::PaddingFree, &gan_d3(), 4).unwrap();
        assert_eq!(g.array.rows, 512);
        assert_eq!(g.array.weight_cols, 16 * 256);
        assert_eq!(g.cycles, 16); // IH*IW
        assert_eq!(g.accumulator_channels, 16 * 256 * 4);
        assert_eq!(g.accumulated_values, 16 * (16 * 256) as u128);
        assert_eq!(g.nonzero_row_activations, 16 * 512);
    }

    #[test]
    fn red_full_geometry() {
        let g = DesignGeometry::derive(Design::red(RedLayoutPolicy::Auto), &gan_d3(), 4).unwrap();
        assert_eq!(g.array.instances, 16); // KH*KW sub-crossbars
        assert_eq!(g.array.rows, 512);
        assert_eq!(g.cycles, 16); // OH*OW / s^2 = 64/4
        assert_eq!(g.merge_width, 4); // ceil(4/2)^2
                                      // Shared vertical sum-up: s^2 * M output channels per batch, so
                                      // total conversions equal the zero-padding design's.
        assert_eq!(g.conversions, 16 * (4 * 256 * 4) as u128);
        let zp = DesignGeometry::derive(Design::ZeroPadding, &gan_d3(), 4).unwrap();
        assert_eq!(g.conversions, zp.conversions);
    }

    #[test]
    fn red_halved_geometry_fcn() {
        let g = DesignGeometry::derive(Design::red(RedLayoutPolicy::Auto), &fcn_d2(), 4).unwrap();
        assert_eq!(g.array.instances, 128); // 256 taps / 2
        assert_eq!(g.array.rows, 42); // 2C
                                      // batches = (568/8)^2 = 71^2; two cycles each.
        assert_eq!(g.cycles, 2 * 71 * 71);
        assert_eq!(g.merge_width, 4); // ceil(16/8)^2
    }

    #[test]
    fn zp_and_red_share_activations_and_conversions() {
        for layer in [gan_d3(), fcn_d2()] {
            let zp = DesignGeometry::derive(Design::ZeroPadding, &layer, 4).unwrap();
            let red =
                DesignGeometry::derive(Design::red(RedLayoutPolicy::Auto), &layer, 4).unwrap();
            // Zero-skipping performs exactly the non-zero work of the
            // zero-padding design...
            assert_eq!(zp.nonzero_row_activations, red.nonzero_row_activations);
            // ...and RED's total cell count matches (same weights).
            assert_eq!(zp.total_cells(), red.total_cells());
        }
    }

    #[test]
    fn red_cycle_advantage_is_stride_squared() {
        let zp = DesignGeometry::derive(Design::ZeroPadding, &gan_d3(), 4).unwrap();
        let red = DesignGeometry::derive(Design::red(RedLayoutPolicy::Auto), &gan_d3(), 4).unwrap();
        assert_eq!(zp.cycles, red.cycles * 4); // s^2 = 4

        let zp = DesignGeometry::derive(Design::ZeroPadding, &fcn_d2(), 4).unwrap();
        let red = DesignGeometry::derive(Design::red(RedLayoutPolicy::Auto), &fcn_d2(), 4).unwrap();
        assert_eq!(zp.cycles, 568 * 568);
        assert_eq!(zp.cycles / red.cycles, 32); // s^2 / 2 (halved)
    }

    #[test]
    fn zero_cpw_rejected() {
        assert!(DesignGeometry::derive(Design::ZeroPadding, &gan_d3(), 0).is_err());
    }

    #[test]
    fn array_shape_totals() {
        let a = ArrayShape {
            rows: 512,
            weight_cols: 256,
            instances: 25,
        };
        assert_eq!(a.total_rows(), 12800);
        assert_eq!(a.total_weight_cols(), 6400);
    }
}
