use red_tensor::{ShapeError, TensorError};
use red_xbar::XbarError;
use std::error::Error;
use std::fmt;

/// Errors from architecture construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// A tensor-level error (shape/channel mismatches).
    Tensor(TensorError),
    /// A crossbar-level error (weight range, programming).
    Xbar(XbarError),
    /// The kernel tensor does not match the layer shape it is being mapped
    /// for.
    KernelMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The input feature map does not match the layer shape at run time.
    InputMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A pipeline (or network stack) evaluation was given no layers.
    EmptyPipeline,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::Tensor(e) => write!(f, "tensor error: {e}"),
            ArchError::Xbar(e) => write!(f, "crossbar error: {e}"),
            ArchError::KernelMismatch { detail } => write!(f, "kernel mismatch: {detail}"),
            ArchError::InputMismatch { detail } => write!(f, "input mismatch: {detail}"),
            ArchError::EmptyPipeline => write!(f, "pipeline needs at least one layer"),
        }
    }
}

impl Error for ArchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchError::Tensor(e) => Some(e),
            ArchError::Xbar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ArchError {
    fn from(e: TensorError) -> Self {
        ArchError::Tensor(e)
    }
}

impl From<ShapeError> for ArchError {
    fn from(e: ShapeError) -> Self {
        ArchError::Tensor(TensorError::Shape(e))
    }
}

impl From<XbarError> for ArchError {
    fn from(e: XbarError) -> Self {
        ArchError::Xbar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ArchError::KernelMismatch {
            detail: "kernel 3x3 vs spec 5x5".into(),
        };
        assert!(e.to_string().contains("kernel 3x3"));
        let e: ArchError = XbarError::BadWeightMatrix("no rows".into()).into();
        assert!(e.to_string().contains("no rows"));
        assert!(e.source().is_some());
        let e = ArchError::EmptyPipeline;
        assert!(e.to_string().contains("at least one layer"));
        assert!(e.source().is_none());
    }
}
