//! Inter-layer pipelining of multi-layer deconvolution networks.
//!
//! The ReRAM accelerators RED builds on (PipeLayer [8], ReGAN [12]) keep
//! every layer's weights resident in their own crossbars and stream
//! feature maps through them as a pipeline: while layer `k` processes
//! image `n`, layer `k-1` already processes image `n+1`. This module
//! prices that execution style for whole generator/up-sampling stacks:
//!
//! * the **fill latency** (first output) is the sum of stage latencies;
//! * the **steady-state interval** between outputs is the slowest stage's
//!   latency — the pipeline bottleneck;
//! * energy and area are additive over stages.
//!
//! This is the repository's extension of the paper's single-layer
//! evaluation to the full networks of `red-workloads::networks`, and it
//! shows a second-order benefit of RED the paper leaves implicit: by
//! compressing every stage by ~`stride²`, RED compresses the *bottleneck*
//! by the same factor, so pipeline throughput scales like the single-layer
//! speedup.

use crate::{ArchError, CostModel, CostReport, Design};
use red_tensor::LayerShape;
use serde::Serialize;

/// Pipelined execution report for a stack of layers on one design.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// The design all stages run on.
    pub design: Design,
    /// Per-stage cost reports, in dataflow order.
    pub stages: Vec<CostReport>,
}

impl PipelineReport {
    /// Prices `layers` on `design` under `model`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if any stage fails to evaluate, and
    /// [`ArchError::EmptyPipeline`] if `layers` is empty.
    pub fn evaluate(
        model: &CostModel,
        design: Design,
        layers: &[LayerShape],
    ) -> Result<Self, ArchError> {
        let stages = layers
            .iter()
            .map(|l| model.evaluate(design, l))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_stages(design, stages)
    }

    /// Assembles a report from per-stage cost reports priced elsewhere —
    /// the per-stage hook used by `red-runtime`, whose chip compiler
    /// already holds each stage's [`CostReport`] alongside its compiled
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::EmptyPipeline`] if `stages` is empty.
    pub fn from_stages(design: Design, stages: Vec<CostReport>) -> Result<Self, ArchError> {
        if stages.is_empty() {
            return Err(ArchError::EmptyPipeline);
        }
        Ok(Self { design, stages })
    }

    /// Number of pipeline stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Latency until the first input's final output emerges: the sum of
    /// stage latencies (no overlap available for a single input).
    pub fn fill_latency_ns(&self) -> f64 {
        self.stages.iter().map(CostReport::total_latency_ns).sum()
    }

    /// Steady-state initiation interval: the slowest stage's latency.
    pub fn steady_interval_ns(&self) -> f64 {
        self.stages
            .iter()
            .map(CostReport::total_latency_ns)
            .fold(0.0, f64::max)
    }

    /// Index of the bottleneck stage.
    pub fn bottleneck(&self) -> usize {
        self.stages
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_latency_ns().total_cmp(&b.1.total_latency_ns()))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Total latency to push `batch` inputs through the pipeline:
    /// `fill + (batch - 1) * interval`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn batch_latency_ns(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        self.fill_latency_ns() + (batch - 1) as f64 * self.steady_interval_ns()
    }

    /// Sustained throughput in inputs per second at steady state.
    pub fn throughput_per_s(&self) -> f64 {
        1e9 / self.steady_interval_ns()
    }

    /// Energy per input: the sum of stage energies (every input traverses
    /// every stage exactly once), in pJ.
    pub fn energy_per_input_pj(&self) -> f64 {
        self.stages.iter().map(CostReport::total_energy_pj).sum()
    }

    /// Total area of the resident pipeline (all stages' crossbars and
    /// periphery coexist), in µm².
    pub fn total_area_um2(&self) -> f64 {
        self.stages.iter().map(CostReport::total_area_um2).sum()
    }

    /// Steady-state speedup of `self` over `baseline` (ratio of initiation
    /// intervals).
    pub fn speedup_vs(&self, baseline: &PipelineReport) -> f64 {
        baseline.steady_interval_ns() / self.steady_interval_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedLayoutPolicy;

    fn stack() -> Vec<LayerShape> {
        // Three chained stride-2 layers, shrinking channels like a
        // generator: 4x4x64 -> 8x8x32 -> 16x16x16 -> 32x32x8.
        let mut layers = Vec::new();
        let chans = [64usize, 32, 16, 8];
        let mut extent = 4;
        for i in 0..3 {
            layers
                .push(LayerShape::new(extent, extent, chans[i], chans[i + 1], 4, 4, 2, 1).unwrap());
            extent *= 2;
        }
        layers
    }

    #[test]
    fn fill_and_interval_relations() {
        let model = CostModel::paper_default();
        let p = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack()).unwrap();
        assert_eq!(p.depth(), 3);
        assert!(p.fill_latency_ns() >= p.steady_interval_ns());
        let max_stage = p
            .stages
            .iter()
            .map(CostReport::total_latency_ns)
            .fold(0.0, f64::max);
        assert_eq!(p.steady_interval_ns(), max_stage);
        // batch latency is affine in batch size.
        let b1 = p.batch_latency_ns(1);
        let b2 = p.batch_latency_ns(2);
        let b10 = p.batch_latency_ns(10);
        assert!((b1 - p.fill_latency_ns()).abs() < 1e-9);
        assert!(((b10 - b2) - 8.0 * p.steady_interval_ns()).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_is_largest_layer() {
        let model = CostModel::paper_default();
        let p = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack()).unwrap();
        // The last layer has the most output pixels (cycles), making it
        // the bottleneck under the zero-padding design.
        assert_eq!(p.bottleneck(), 2);
    }

    #[test]
    fn red_pipeline_speedup_matches_single_layer_scale() {
        let model = CostModel::paper_default();
        let zp = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack()).unwrap();
        let red =
            PipelineReport::evaluate(&model, Design::red(RedLayoutPolicy::Auto), &stack()).unwrap();
        let s = red.speedup_vs(&zp);
        // All stages are stride 2, so the pipeline speedup sits at the
        // paper's stride-2 operating point.
        assert!((3.4..=4.0).contains(&s), "pipeline speedup {s}");
        assert!(red.throughput_per_s() > zp.throughput_per_s());
        // Energy adds per stage; RED still saves.
        assert!(red.energy_per_input_pj() < zp.energy_per_input_pj());
    }

    #[test]
    fn empty_stack_rejected() {
        let model = CostModel::paper_default();
        assert!(matches!(
            PipelineReport::evaluate(&model, Design::ZeroPadding, &[]),
            Err(ArchError::EmptyPipeline)
        ));
        assert!(matches!(
            PipelineReport::from_stages(Design::ZeroPadding, Vec::new()),
            Err(ArchError::EmptyPipeline)
        ));
    }

    #[test]
    fn from_stages_matches_evaluate() {
        let model = CostModel::paper_default();
        let direct = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack()).unwrap();
        let stages = stack()
            .iter()
            .map(|l| model.evaluate(Design::ZeroPadding, l).unwrap())
            .collect();
        let assembled = PipelineReport::from_stages(Design::ZeroPadding, stages).unwrap();
        assert_eq!(assembled.depth(), direct.depth());
        assert_eq!(assembled.steady_interval_ns(), direct.steady_interval_ns());
        assert_eq!(assembled.fill_latency_ns(), direct.fill_latency_ns());
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let model = CostModel::paper_default();
        let p = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack()).unwrap();
        let _ = p.batch_latency_ns(0);
    }
}
