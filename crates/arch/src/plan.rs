//! Compile-time execution plans: the per-output-pixel gather schedules the
//! engines resolve once at `new()` time and replay allocation-free on
//! every run.
//!
//! The seed engines re-derived the same mode/tap/coordinate arithmetic for
//! every output pixel of every image — pure per-image overhead, since the
//! schedule depends only on the layer geometry the engine was compiled
//! for. An [`ExecPlan`] freezes that schedule: a flat list of resolved
//! [`GatherEntry`]s (which input pixel feeds which engine slot), sliced
//! per output pixel, in exactly the pixel order the seed dataflow visited.
//! Executing a plan is a linear walk — no modulo arithmetic, no bounds
//! checks beyond the slice, no heap allocation.

/// One resolved gather: input pixel `(x, y)` feeds engine slot `slot`.
///
/// The slot meaning is engine-defined: for `RedEngine` it is the linear
/// kernel-tap index `i·KW + j` whose sub-crossbar consumes the pixel; for
/// the window engines (`ZeroPaddingEngine`, `ConvEngine`) it is the
/// receptive-field slot `i·KW + j` whose `C` channels the pixel fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherEntry {
    /// Engine-defined destination slot.
    pub slot: u32,
    /// Input-row coordinate.
    pub x: u32,
    /// Input-column coordinate.
    pub y: u32,
}

/// One output pixel's slice of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelStep {
    /// Output-row coordinate.
    pub u: u32,
    /// Output-column coordinate.
    pub v: u32,
    start: u32,
    end: u32,
}

/// A frozen per-output-pixel gather schedule (see the module docs).
///
/// Build with [`ExecPlan::begin_pixel`] / [`ExecPlan::push_gather`] during
/// engine construction; replay with [`ExecPlan::iter`] during execution.
#[derive(Debug, Clone, Default)]
pub struct ExecPlan {
    entries: Vec<GatherEntry>,
    pixels: Vec<PixelStep>,
}

impl ExecPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the next output pixel `(u, v)`; subsequent
    /// [`ExecPlan::push_gather`] calls attach to it.
    pub fn begin_pixel(&mut self, u: usize, v: usize) {
        let at = self.entries.len() as u32;
        self.pixels.push(PixelStep {
            u: u as u32,
            v: v as u32,
            start: at,
            end: at,
        });
    }

    /// Appends a resolved gather to the currently open pixel.
    ///
    /// # Panics
    ///
    /// Panics if no pixel has been opened.
    pub fn push_gather(&mut self, slot: usize, x: usize, y: usize) {
        self.entries.push(GatherEntry {
            slot: slot as u32,
            x: x as u32,
            y: y as u32,
        });
        self.pixels
            .last_mut()
            .expect("begin_pixel before push_gather")
            .end += 1;
    }

    /// Number of planned output pixels.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// Total number of resolved gather entries across all pixels.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates the plan in the recorded pixel order, yielding each output
    /// pixel's coordinates and its resolved gathers.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &[GatherEntry])> + '_ {
        self.pixels.iter().map(|p| {
            (
                (p.u as usize, p.v as usize),
                &self.entries[p.start as usize..p.end as usize],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_records_pixels_and_slices_entries() {
        let mut plan = ExecPlan::new();
        plan.begin_pixel(0, 0);
        plan.push_gather(3, 1, 2);
        plan.push_gather(5, 0, 0);
        plan.begin_pixel(0, 1); // no gathers: structural-zero pixel
        plan.begin_pixel(1, 0);
        plan.push_gather(0, 2, 2);
        assert_eq!(plan.pixel_count(), 3);
        assert_eq!(plan.entry_count(), 3);
        let collected: Vec<_> = plan.iter().collect();
        assert_eq!(collected[0].0, (0, 0));
        assert_eq!(collected[0].1.len(), 2);
        assert_eq!(
            collected[0].1[0],
            GatherEntry {
                slot: 3,
                x: 1,
                y: 2
            }
        );
        assert_eq!(collected[1].0, (0, 1));
        assert!(collected[1].1.is_empty());
        assert_eq!(collected[2].1.len(), 1);
    }

    #[test]
    #[should_panic(expected = "begin_pixel before push_gather")]
    fn gather_without_pixel_panics() {
        let mut plan = ExecPlan::new();
        plan.push_gather(0, 0, 0);
    }
}
