//! Device-realism study: how RED's accuracy holds up under the
//! non-idealities real ReRAM arrays exhibit — conductance variation,
//! stuck-at faults, ADC saturation, wire IR drop, and retention drift.
//!
//! The paper evaluates ideal devices; this example exercises the
//! repository's extension models and reports signal-to-quantization-noise
//! ratios for each effect, plus the headline comparison: RED's short
//! sub-crossbar lines make it *more* robust to IR drop than the
//! monolithic zero-padding mapping.
//!
//! ```sh
//! cargo run --example noise_resilience
//! ```

use red_core::device::DriftModel;
use red_core::prelude::*;
use red_core::tensor::quant::sqnr_db;
use red_core::xbar::IrDropModel;

fn to_f64(m: &FeatureMap<i64>) -> FeatureMap<f64> {
    m.map(|v| v as f64)
}

fn run_sqnr(design: Design, cfg: XbarConfig, layer: &LayerShape) -> f64 {
    let kernel = synth::kernel(layer, 127, 11);
    let input = synth::input_dense(layer, 127, 12);
    let exact =
        red_core::tensor::deconv::deconv_direct(&input, &kernel, layer.spec()).expect("golden");
    let acc = Accelerator::builder()
        .design(design)
        .xbar_config(cfg)
        .build();
    let out = acc
        .compile(layer, &kernel)
        .expect("compiles")
        .run(&input)
        .expect("runs");
    sqnr_db(&to_f64(&exact), &to_f64(&out.output))
}

fn main() {
    let layer = Benchmark::GanDeconv3.scaled_layer(32); // 4x4x16 -> 8x8x8
    let red = Design::red(RedLayoutPolicy::Auto);

    println!("== conductance variation (lognormal sigma)");
    for sigma in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let db = run_sqnr(red, XbarConfig::noisy(sigma, 0.0, 0.0, 42), &layer);
        println!("  sigma={sigma:<5}  SQNR {db:>7.1} dB");
    }

    println!("\n== stuck-at faults (SA0 rate, SA1 = rate/10)");
    for rate in [0.0, 0.001, 0.01, 0.05] {
        let db = run_sqnr(red, XbarConfig::noisy(0.0, rate, rate / 10.0, 7), &layer);
        println!("  p={rate:<6}  SQNR {db:>7.1} dB");
    }

    println!("\n== retention drift (nu = 0.03)");
    let day = 86_400.0;
    for (label, t) in [
        ("fresh", 0.0),
        ("1 day", day),
        ("1 month", 30.0 * day),
        ("1 year", 365.0 * day),
    ] {
        let cfg = XbarConfig {
            drift: DriftModel::after(0.03, t),
            ..XbarConfig::ideal()
        };
        let db = run_sqnr(red, cfg, &layer);
        println!("  {label:<8} SQNR {db:>7.1} dB");
    }

    println!("\n== IR drop: RED's short lines vs the monolithic mapping");
    println!("  (same wire technology; zero-padding's array is KHxKW taller)");
    for r_wire in [0.0, 10.0, 40.0] {
        let cfg = XbarConfig {
            ir_drop: IrDropModel::with_resistance(r_wire),
            ..XbarConfig::ideal()
        };
        let zp_db = run_sqnr(Design::ZeroPadding, cfg, &layer);
        let red_db = run_sqnr(red, cfg, &layer);
        println!(
            "  r_wire={r_wire:<5} zero-padding {zp_db:>7.1} dB   RED {red_db:>7.1} dB{}",
            if red_db > zp_db && r_wire > 0.0 {
                "   <- RED more robust"
            } else {
                ""
            }
        );
    }

    println!(
        "\nTakeaway: under identical device statistics RED tracks the baseline's\n\
         accuracy, and under wire parasitics its pixel-wise mapping is *more*\n\
         robust — the sub-crossbars are KH*KW times shorter."
    );
}
