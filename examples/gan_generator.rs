//! End-to-end DCGAN generator on the RED accelerator: chain all four
//! 5×5/stride-2 deconvolution layers (4×4 latent projection up to a 64×64
//! image), executing every layer through simulated sub-crossbars, and
//! compare the whole network's latency/energy across the three designs.
//!
//! This is the workload class the paper's introduction motivates: GAN
//! generators are deconvolution-dominated, so the accelerator's
//! deconvolution efficiency *is* the generator's efficiency.
//!
//! ```sh
//! cargo run --example gan_generator
//! ```

use red_core::prelude::*;
use red_core::workloads::networks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Channel-scaled DCGAN generator (1024 -> 64 base channels scaled /16)
    // so the functional simulation of all four layers stays fast.
    let stack = networks::dcgan_generator(16)?;
    println!(
        "== {} ({} deconvolution layers)",
        stack.name,
        stack.layers.len()
    );
    assert!(stack.is_chained());

    // "Latent code" enters as the first layer's 4x4 activation block.
    let mut activation = synth::input_dense(&stack.layers[0], 64, 2024);
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .build();

    println!("\nfunctional pass through RED (channel-scaled):");
    let mut total_cycles = 0u64;
    for (i, layer) in stack.layers.iter().enumerate() {
        let kernel = synth::kernel(layer, 4, 3000 + i as u64);
        let compiled = acc.compile(layer, &kernel)?;
        let exec = compiled.run(&activation)?;
        total_cycles += exec.stats.cycles;
        println!(
            "  layer {i}: {:3}x{:<3} -> {:3}x{:<3}  cycles={:5}  sub-crossbars={:2}",
            layer.input_h(),
            layer.input_w(),
            exec.output.height(),
            exec.output.width(),
            exec.stats.cycles,
            compiled.cost().geometry.array.instances,
        );
        // Stand-in activation function keeping values in input range.
        activation = exec.output.map(|v| (v % 89).abs() + 1);
    }
    println!("  total RED cycles: {total_cycles}");
    println!(
        "  final image block: {}x{}x{}",
        activation.height(),
        activation.width(),
        activation.channels()
    );

    // Full-size analytic bill for the whole generator on each design.
    let full = networks::dcgan_generator(1)?;
    let model = CostModel::paper_default();
    println!("\nanalytic totals for the full-size generator:");
    println!(
        "  {:13} {:>14} {:>14} {:>10}",
        "design", "latency(us)", "energy(uJ)", "speedup"
    );
    let mut baseline_latency = 0.0;
    for design in Design::paper_lineup() {
        let mut latency = 0.0;
        let mut energy = 0.0;
        for layer in &full.layers {
            let r = model.evaluate(design, layer)?;
            latency += r.total_latency_ns();
            energy += r.total_energy_pj();
        }
        if design == Design::ZeroPadding {
            baseline_latency = latency;
        }
        println!(
            "  {:13} {:>13.2} {:>13.2} {:>9.2}x",
            design.label(),
            latency / 1e3,
            energy / 1e6,
            baseline_latency / latency
        );
    }
    println!(
        "\nEvery layer of the generator is stride 2, so RED's whole-network\n\
         speedup sits at the paper's stride-2 operating point (~3.7x)."
    );
    Ok(())
}
