//! Quickstart: compile one Table I benchmark onto all three designs, run
//! real data through the simulated crossbars, verify bit-exactness against
//! the textbook deconvolution, and print the paper-style comparison.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use red_core::prelude::*;
use red_core::Comparison;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // GAN_Deconv3 (SNGAN on Cifar-10): 4x4x512 -> 8x8x256, 4x4 kernel,
    // stride 2. Channel-scaled 64x so the functional simulation is instant;
    // the analytic cost evaluation below uses the full-size layer.
    let bench = Benchmark::GanDeconv3;
    let layer = bench.scaled_layer(64);
    println!("== {bench} ({} on {})", bench.network(), bench.dataset());
    println!(
        "layer: {}x{}x{} -> {}x{}x{}, kernel {}x{}, stride {}\n",
        layer.input_h(),
        layer.input_w(),
        layer.channels(),
        layer.output_geometry().height,
        layer.output_geometry().width,
        layer.filters(),
        layer.spec().kernel_h(),
        layer.spec().kernel_w(),
        layer.spec().stride()
    );

    let kernel = synth::kernel(&layer, 127, 42);
    let input = synth::input_dense(&layer, 127, 7);
    let golden = red_core::tensor::deconv::deconv_direct(&input, &kernel, layer.spec())?;

    println!("functional run (channel-scaled):");
    for design in Design::paper_lineup() {
        let acc = Accelerator::builder().design(design).build();
        let compiled = acc.compile(&layer, &kernel)?;
        let exec = compiled.run(&input)?;
        assert_eq!(
            exec.output, golden,
            "engine must match the golden deconvolution"
        );
        println!(
            "  {:13} cycles={:5}  vector-ops={:5}  zero-slots={:5.1}%  bit-exact=yes",
            design.label(),
            exec.stats.cycles,
            exec.stats.vector_ops,
            exec.stats.zero_slot_fraction() * 100.0
        );
    }

    // Full-size analytic comparison, normalized the way the paper reports.
    let cmp = Comparison::evaluate(&CostModel::paper_default(), &bench.layer())?;
    println!("\nanalytic comparison (full Table I size, normalized to zero-padding):");
    println!(
        "  {:13} {:>8} {:>12} {:>10} {:>8}",
        "design", "speedup", "energy(rel)", "area(rel)", "cycles"
    );
    for row in cmp.rows() {
        println!(
            "  {:13} {:>7.2}x {:>11.3}x {:>9.1}% {:>8}",
            row.design, row.speedup, row.energy_rel, row.area_rel_pct, row.cycles
        );
    }
    println!(
        "\nRED speedup {:.2}x, energy saving {:.1}%, area overhead {:+.1}% — the\n\
         paper's Fig. 7/8/9 shape for a stride-2 GAN layer.",
        cmp.red().speedup_vs(cmp.zero_padding()),
        cmp.red().energy_saving_vs(cmp.zero_padding()) * 100.0,
        cmp.red().area_overhead_vs(cmp.zero_padding()) * 100.0
    );
    Ok(())
}
