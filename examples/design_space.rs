//! Design-space exploration with the cost model: the trade-offs the paper
//! discusses in §III-C and a few it leaves open.
//!
//! 1. Speedup vs stride (the `stride²` computation-mode parallelism);
//! 2. Full vs halved sub-crossbar tensor (Eq. 2): area saved vs cycles paid;
//! 3. ADC resolution vs functional accuracy (our extension);
//! 4. Mux ratio vs latency/area (our extension).
//!
//! ```sh
//! cargo run --example design_space
//! ```

use red_core::prelude::*;
use red_core::tensor::quant::sqnr_db;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::paper_default();

    // ---- 1. Speedup vs stride (kernel 2s, the usual deconv convention).
    println!("== speedup vs stride (C=256, M=128, kernel = 2*stride)");
    println!(
        "  {:>6} {:>8} {:>9} {:>10}",
        "stride", "kernel", "modes", "speedup"
    );
    for s in [1usize, 2, 4, 8] {
        let k = 2 * s;
        let layer = LayerShape::new(8, 8, 256, 128, k, k, s, s / 2)?;
        let zp = model.evaluate(Design::ZeroPadding, &layer)?;
        let red = model.evaluate(Design::red(RedLayoutPolicy::AlwaysFull), &layer)?;
        println!(
            "  {:>6} {:>5}x{:<2} {:>9} {:>9.2}x",
            s,
            k,
            k,
            s * s,
            red.speedup_vs(&zp)
        );
    }
    println!("  (quadratic in stride, as §III-C derives)");

    // ---- 2. Eq. 2 trade-off on the FCN 16x16 kernel.
    println!("\n== full vs halved SCT on FCN_Deconv2 (256 taps)");
    let layer = Benchmark::FcnDeconv2.layer();
    let zp = model.evaluate(Design::ZeroPadding, &layer)?;
    for (name, policy) in [
        ("full (256 SC)", RedLayoutPolicy::AlwaysFull),
        ("halved (128 SC)", RedLayoutPolicy::AlwaysHalved),
    ] {
        let r = model.evaluate(Design::red(policy), &layer)?;
        println!(
            "  {:16} speedup={:6.2}x  area={:+6.1}%  cycles={}",
            name,
            r.speedup_vs(&zp),
            r.area_overhead_vs(&zp) * 100.0,
            r.geometry.cycles
        );
    }
    println!("  (halving trades ~2x cycles for the instance-count area cut — Eq. 2)");

    // ---- 3. ADC bits vs accuracy on a functional run.
    println!("\n== ADC resolution vs output fidelity (GAN_Deconv3 scaled)");
    let layer = Benchmark::GanDeconv3.scaled_layer(32);
    let kernel = synth::kernel(&layer, 127, 5);
    let input = synth::input_dense(&layer, 127, 6);
    let exact = red_core::tensor::deconv::deconv_direct(&input, &kernel, layer.spec())?;
    let exact_f = exact.map(|v| v as f64);
    for bits in [4u32, 6, 8, 10, 12] {
        let cfg = XbarConfig {
            adc: AdcModel::Saturating { bits },
            ..XbarConfig::ideal()
        };
        let acc = Accelerator::builder()
            .design(Design::red(RedLayoutPolicy::Auto))
            .xbar_config(cfg)
            .build();
        let out = acc.compile(&layer, &kernel)?.run(&input)?;
        let db = sqnr_db(&exact_f, &out.output.map(|v| v as f64));
        println!("  {bits:>2}-bit ADC: SQNR {db:>8.1} dB");
    }

    // ---- 4. Mux ratio: conversion serialization vs read-channel area.
    println!("\n== mux ratio sweep (GAN_Deconv1, RED)");
    let layer = Benchmark::GanDeconv1.layer();
    println!("  {:>5} {:>14} {:>12}", "mux", "latency(us)", "area(mm2)");
    for mux in [4usize, 8, 16, 32] {
        let params = CircuitParams {
            mux_ratio: mux,
            ..CircuitParams::default()
        };
        let m = CostModel::new(TechnologyParams::node_65nm(), params, CellConfig::default());
        let r = m.evaluate(Design::red(RedLayoutPolicy::Auto), &layer)?;
        println!(
            "  {:>5} {:>13.2} {:>11.3}",
            mux,
            r.total_latency_ns() / 1e3,
            r.total_area_um2() / 1e6
        );
    }
    println!("  (larger mux ratios serialize conversions but shrink the ADC bank)");
    Ok(())
}
