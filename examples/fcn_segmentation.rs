//! FCN-8s semantic-segmentation up-sampling on RED: the 2× stage
//! (FCN_Deconv1) and the 8× stage (FCN_Deconv2's geometry, spatially
//! reduced for the functional pass), ending in a per-pixel argmax class
//! map — the paper's second workload family, where large strides make the
//! zero-padding baseline catastrophically redundant (99 %+ zeros) and the
//! area-efficient halved sub-crossbar tensor (Eq. 2) kicks in.
//!
//! ```sh
//! cargo run --example fcn_segmentation
//! ```

use red_core::prelude::*;

/// Collapse an M-channel score map to a class-index map.
fn argmax_classes(scores: &FeatureMap<i64>) -> Vec<Vec<usize>> {
    (0..scores.height())
        .map(|h| {
            (0..scores.width())
                .map(|w| {
                    let px = scores.pixel(h, w);
                    px.iter()
                        .enumerate()
                        .max_by_key(|(_, v)| **v)
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                })
                .collect()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1: FCN_Deconv1 exactly as in Table I, channel-scaled 3x
    // (21 classes -> 7 synthetic classes).
    let stage1 = Benchmark::FcnDeconv1.scaled_layer(3);
    // Stage 2: the 8x kernel/stride of FCN_Deconv2 at reduced extent.
    let stage2 = LayerShape::new(9, 9, 7, 7, 16, 16, 8, 0)?;

    println!("== FCN-8s up-sampling head on RED");
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .build();

    // Coarse score map standing in for the backbone's pool5 scores.
    let coarse = synth::input_dense(&stage1, 30, 11);
    let k1 = synth::kernel(&stage1, 6, 100);
    let c1 = acc.compile(&stage1, &k1)?;
    let up2 = c1.run(&coarse)?;
    println!(
        "  2x stage: {:2}x{:<2} -> {:2}x{:<2}, {} sub-crossbars (full SCT), {} cycles",
        stage1.input_h(),
        stage1.input_w(),
        up2.output.height(),
        up2.output.width(),
        c1.cost().geometry.array.instances,
        up2.stats.cycles
    );

    // Resample (crop) the 2x output into the 8x stage's input block.
    let mid = FeatureMap::from_fn(
        stage2.input_h(),
        stage2.input_w(),
        stage2.channels(),
        |h, w, c| {
            (up2.output[(
                h.min(up2.output.height() - 1),
                w.min(up2.output.width() - 1),
                c,
            )] % 25)
                .abs()
                + 1
        },
    );
    let k2 = synth::kernel(&stage2, 3, 200);
    let c2 = acc.compile(&stage2, &k2)?;
    let up8 = c2.run(&mid)?;
    println!(
        "  8x stage: {:2}x{:<2} -> {:2}x{:<2}, {} sub-crossbars (halved SCT, Eq. 2), {} cycles",
        stage2.input_h(),
        stage2.input_w(),
        up8.output.height(),
        up8.output.width(),
        c2.cost().geometry.array.instances,
        up8.stats.cycles
    );

    // Class map: print a down-sampled ASCII view.
    let classes = argmax_classes(&up8.output);
    println!("\n  segmentation map (16x down-sampled argmax):");
    let step = classes.len() / 16;
    for row in classes.iter().step_by(step.max(1)).take(16) {
        let line: String = row
            .iter()
            .step_by(step.max(1))
            .take(16)
            .map(|c| char::from_digit(*c as u32 % 10, 10).unwrap_or('?'))
            .collect();
        println!("    {line}");
    }

    // The paper's point, at full Table I size: stride 8 makes zero-padding
    // ~99% redundant and RED ~32x faster.
    let full = Benchmark::FcnDeconv2.layer();
    let model = CostModel::paper_default();
    let zp = model.evaluate(Design::ZeroPadding, &full)?;
    let red = model.evaluate(Design::red(RedLayoutPolicy::Auto), &full)?;
    let redundancy = red_core::tensor::redundancy::map_zero_fraction(
        full.input_h(),
        full.input_w(),
        full.spec(),
    )?;
    println!(
        "\n  full FCN_Deconv2: padded-map redundancy {:.2}%, RED speedup {:.2}x,\n\
         \x20 energy saving {:.1}% (paper: up to 31.15x / 88.36%)",
        redundancy * 100.0,
        red.speedup_vs(&zp),
        red.energy_saving_vs(&zp) * 100.0
    );
    Ok(())
}
