//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface of every external dependency it names (see
//! `shims/README.md`). This shim implements the subset of proptest that
//! `tests/prop_invariants.rs` uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`,
//! strategies for primitive ranges, tuples, [`Just`] and [`any`], the
//! [`proptest!`] test-declaration macro, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its case number and seed
//!   but is not minimized.
//! * **Deterministic seeding** — cases derive from a hash of the test
//!   name plus the case index, so runs are reproducible in CI without a
//!   regression file. The real proptest randomizes by default.
//! * **No persistence, forking, or timeout support.**

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case number `case` of the test identified by `test_hash`.
    pub fn for_case(test_hash: u64, case: u32) -> Self {
        let stream = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1);
        Self(StdRng::seed_from_u64(test_hash ^ stream))
    }
}

/// FNV-1a hash of a test path, used to decorrelate per-test RNG streams.
pub const fn fnv1a(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
        i += 1;
    }
    hash
}

/// A recipe for generating random values of one type.
///
/// `generate` returns `None` when the drawn raw values fail a filter; the
/// runner retries a bounded number of times before giving up.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` if this draw was rejected by a filter.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a second-stage strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values satisfying `pred`; `reason` labels exhaustion.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            pred,
            reason,
        }
    }

    /// Simultaneously filters and maps; `None` from `f` rejects the draw.
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            base: self,
            f,
            reason,
        }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.base.generate(rng).map(&self.f)
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let first = self.base.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    base: S,
    pred: F,
    #[allow(dead_code)]
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        self.base.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// Output of [`Strategy::prop_filter_map`].
#[derive(Debug)]
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    #[allow(dead_code)]
    reason: &'static str,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.base.generate(rng).and_then(&self.f)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(self.clone().sample_single(&mut rng.0))
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(self.clone().sample_single(&mut rng.0))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

/// Types with a canonical "anything goes" strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Draws one accepted case from `strategy`, retrying filter rejections a
/// bounded number of times. `None` means the filters rejected everything.
pub fn generate_case<S: Strategy>(strategy: &S, rng: &mut TestRng) -> Option<S::Value> {
    for _ in 0..1000 {
        if let Some(v) = strategy.generate(rng) {
            return Some(v);
        }
    }
    None
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number
/// of `fn name(pat in strategy, ...) { body }` items carrying their own
/// attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                let test_hash =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(test_hash, case);
                    let ($($arg,)+) = match $crate::generate_case(&strategy, &mut rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => panic!(
                            "proptest shim: strategy rejected every draw for case {case} \
                             of {}", stringify!($name),
                        ),
                    };
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{} of {} failed: {e}",
                            config.cases,
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+),
        );
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` (both `{:?}`)",
            left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` (both `{:?}`): {}",
            left,
            format!($($fmt)+),
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 1usize..=5, b in 0u32..7, x in -1.5f64..1.5) {
            prop_assert!((1..=5).contains(&a));
            prop_assert!(b < 7);
            prop_assert!((-1.5..1.5).contains(&x));
        }

        #[test]
        fn flat_map_and_filter_map_compose(
            pair in (1usize..=4).prop_flat_map(|n| (Just(n), 0..n))
                .prop_filter_map("second below first", |(n, k)| (k < n).then_some((n, k)))
        ) {
            prop_assert!(pair.1 < pair.0);
        }

        #[test]
        fn any_draws_vary(seed in any::<u64>(), flag in any::<bool>()) {
            // Deterministic per case; just exercise the strategies.
            let _ = (seed, flag);
            prop_assert_eq!(flag as u64 & !1, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = (1usize..=100, any::<u64>());
        let mut a = TestRng::for_case(1234, 7);
        let mut b = TestRng::for_case(1234, 7);
        assert_eq!(
            crate::generate_case(&strat, &mut a),
            crate::generate_case(&strat, &mut b)
        );
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (1usize..=3).prop_map(|v| v * 2);
        let mut rng = TestRng::for_case(1, 0);
        let v = crate::generate_case(&doubled, &mut rng).unwrap();
        assert!([2, 4, 6].contains(&v));
    }
}
