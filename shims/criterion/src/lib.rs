//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface of every external dependency it names (see
//! `shims/README.md`). This shim keeps the `benches/` targets compiling
//! (`cargo bench --no-run` is part of the tier-1 verify) and, when run,
//! reports a simple mean ns/iter per benchmark instead of criterion's
//! full statistical analysis. No statistics, no HTML reports, no
//! command-line filtering — benchmark ids are printed with their timing
//! so regressions are still eyeballable in CI logs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Times `f` under the id `id` and prints the result.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `<group>/<id>` and prints the result.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Times `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; results print as they complete).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark id, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-benchmark timing handle passed to the measured closure.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Calls `f` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(40);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < 100_000 && start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        self.ns_per_iter = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.ns_per_iter {
        Some(ns) => println!("{id:<48} {ns:>14.1} ns/iter"),
        None => println!("{id:<48} (no measurement; Bencher::iter never called)"),
    }
}

/// Declares a function that runs the listed benchmark functions in order,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring
/// `criterion::criterion_main!`. Extra CLI arguments (as passed by
/// `cargo bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_and_id_render() {
        let id = BenchmarkId::new("exact", 64);
        assert_eq!(id.to_string(), "exact/64");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }
}
