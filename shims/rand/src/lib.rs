//! Offline stand-in for `rand` (0.8-style API).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface of every external dependency it names (see
//! `shims/README.md`). red-sim uses rand only for *seeded, reproducible*
//! synthetic data — `StdRng::seed_from_u64` plus `gen_range` / `gen_bool`
//! — so this shim implements exactly that subset over a xoshiro256++
//! generator (SplitMix64-seeded). Streams are deterministic per seed but
//! are **not** byte-compatible with the real `rand::rngs::StdRng`; all
//! in-repo consumers only rely on same-seed reproducibility, never on a
//! particular stream.

/// Random number generators ([`rngs::StdRng`]).
pub mod rngs;

/// A source of random `u64`s; the base trait every generator implements.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b` over the integer
    /// primitives and `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} must be a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiply-shift reduction of a uniform `u64` onto `[0, n)`; `n > 0`.
fn reduce64(bits: u64, n: u64) -> u64 {
    ((u128::from(bits) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(reduce64(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound when the
        // span is tiny relative to the magnitude; keep the bound exclusive.
        v.min(self.end.next_down())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0..1_000_000), c.gen_range(0..1_000_000));
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-127..=127);
            assert!((-127..=127).contains(&v));
            let w: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&w));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            let frac = f64::from(c) / f64::from(n);
            assert!((frac - 0.125).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn f64_range_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / f64::from(n);
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5usize..5);
    }
}
