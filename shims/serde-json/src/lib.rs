//! Offline placeholder for `serde_json`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors stand-ins for every external dependency it names (see
//! `shims/README.md`). Nothing in red-sim serializes JSON yet — the
//! `serde` shim's derives are markers — so this crate only reserves the
//! dependency slot in `[workspace.dependencies]`. When a PR needs real
//! JSON output (e.g. result dumps from `red-bench`), implement the needed
//! subset here or vendor the real crate.
