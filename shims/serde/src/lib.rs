//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface of every external dependency it names (see
//! `shims/README.md`). red-sim currently uses serde only as
//! `#[derive(Serialize, Deserialize)]` annotations marking which types are
//! intended to be serializable; nothing serializes yet. This shim keeps
//! those annotations compiling: the derives (re-exported from the
//! `serde_derive` shim) emit nothing, and the traits below are markers
//! blanket-implemented for every type so generic `T: Serialize` bounds
//! still work. Swapping in the real serde later is a manifest-only change.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
