//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface of every external dependency it names (see
//! `shims/README.md`). The real `serde_derive` generates `Serialize` /
//! `Deserialize` impls; red-sim only uses the derives as annotations today
//! (nothing serializes yet), so these derives deliberately emit nothing.
//! The marker-trait blanket impls live in the sibling `serde` shim.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`. Accepts (and ignores)
/// `#[serde(...)]` helper attributes, as the real derive does.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`. Accepts (and ignores)
/// `#[serde(...)]` helper attributes, as the real derive does.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
